package diskstore

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"
	"testing/quick"
)

func mustOpen(t *testing.T) *Store {
	t.Helper()
	s, err := Open()
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := mustOpen(t)
	for i := int64(0); i < 100; i++ {
		val := []byte(fmt.Sprintf("value-%d", i))
		if err := s.Put(i, val); err != nil {
			t.Fatalf("Put(%d): %v", i, err)
		}
	}
	for i := int64(0); i < 100; i++ {
		got, err := s.Get(i)
		if err != nil {
			t.Fatalf("Get(%d): %v", i, err)
		}
		if want := fmt.Sprintf("value-%d", i); string(got) != want {
			t.Errorf("Get(%d) = %q, want %q", i, got, want)
		}
	}
}

func TestUpdateReplaces(t *testing.T) {
	s := mustOpen(t)
	if err := s.Put(7, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(7, []byte("new-and-longer")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(7)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "new-and-longer" {
		t.Errorf("Get = %q, want updated value", got)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
}

func TestGetMissing(t *testing.T) {
	s := mustOpen(t)
	if _, err := s.Get(99); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get(99) error = %v, want ErrNotFound", err)
	}
	if s.Has(99) {
		t.Error("Has(99) = true for missing key")
	}
}

func TestEmptyValue(t *testing.T) {
	s := mustOpen(t)
	if err := s.Put(1, nil); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("Get = %q, want empty", got)
	}
}

func TestScanVisitsCurrentVersions(t *testing.T) {
	s := mustOpen(t)
	for i := int64(0); i < 10; i++ {
		if err := s.Put(i, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put(3, []byte{99}); err != nil { // update
		t.Fatal(err)
	}
	seen := map[int64]byte{}
	err := s.Scan(func(key int64, val []byte) error {
		seen[key] = val[0]
		return nil
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(seen) != 10 {
		t.Fatalf("Scan visited %d keys, want 10", len(seen))
	}
	if seen[3] != 99 {
		t.Errorf("Scan saw stale version of key 3: %d", seen[3])
	}
}

func TestScanPropagatesVisitError(t *testing.T) {
	s := mustOpen(t)
	if err := s.Put(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("stop")
	if err := s.Scan(func(int64, []byte) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Errorf("Scan error = %v, want sentinel", err)
	}
}

func TestIOStatsCounting(t *testing.T) {
	s := mustOpen(t)
	for i := int64(0); i < 5; i++ {
		if err := s.Put(i, make([]byte, 10)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Get(0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(1); err != nil {
		t.Fatal(err)
	}
	if err := s.Scan(func(int64, []byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Writes != 5 {
		t.Errorf("Writes = %d, want 5", st.Writes)
	}
	if st.RandomReads != 2 {
		t.Errorf("RandomReads = %d, want 2", st.RandomReads)
	}
	if st.SequentialReads != 5 {
		t.Errorf("SequentialReads = %d, want 5", st.SequentialReads)
	}
	if st.Reads() != 7 {
		t.Errorf("Reads = %d, want 7", st.Reads())
	}
	perRecord := int64(recordHeaderLen + 10 + recordTrailerLen)
	if st.BytesWritten != 5*perRecord {
		t.Errorf("BytesWritten = %d, want %d", st.BytesWritten, 5*perRecord)
	}
	s.ResetStats()
	if s.Stats() != (IOStats{}) {
		t.Error("ResetStats did not zero counters")
	}
}

func TestIOStatsAdd(t *testing.T) {
	a := IOStats{RandomReads: 1, SequentialReads: 2, Writes: 3, BytesRead: 4, BytesWritten: 5}
	b := IOStats{RandomReads: 10, SequentialReads: 20, Writes: 30, BytesRead: 40, BytesWritten: 50}
	a.Add(b)
	want := IOStats{RandomReads: 11, SequentialReads: 22, Writes: 33, BytesRead: 44, BytesWritten: 55}
	if a != want {
		t.Errorf("Add = %+v, want %+v", a, want)
	}
}

func TestClosedStoreRejectsOps(t *testing.T) {
	s, err := Open()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(1, nil); err == nil {
		t.Error("Put on closed store succeeded")
	}
	if _, err := s.Get(1); err == nil {
		t.Error("Get on closed store succeeded")
	}
	if err := s.Scan(func(int64, []byte) error { return nil }); err == nil {
		t.Error("Scan on closed store succeeded")
	}
	if err := s.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
}

// memBacking is an in-memory Backing with injectable faults.
type memBacking struct {
	buf      bytes.Buffer
	failRead bool
	corrupt  bool
	writeErr error
}

func (m *memBacking) Write(p []byte) (int, error) {
	if m.writeErr != nil {
		return 0, m.writeErr
	}
	return m.buf.Write(p)
}

func (m *memBacking) ReadAt(p []byte, off int64) (int, error) {
	if m.failRead {
		return 0, io.ErrUnexpectedEOF
	}
	data := m.buf.Bytes()
	if off >= int64(len(data)) {
		return 0, io.EOF
	}
	n := copy(p, data[off:])
	if m.corrupt && n > 0 {
		p[n-1] ^= 0xFF
	}
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (m *memBacking) Close() error { return nil }

func TestReadFaultPropagates(t *testing.T) {
	m := &memBacking{}
	s := NewWithBacking(m)
	if err := s.Put(1, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	m.failRead = true
	if _, err := s.Get(1); err == nil {
		t.Error("Get succeeded despite read fault")
	}
}

func TestWriteFaultPropagates(t *testing.T) {
	m := &memBacking{writeErr: io.ErrShortWrite}
	s := NewWithBacking(m)
	if err := s.Put(1, []byte("hello")); err == nil {
		t.Error("Put succeeded despite write fault")
	}
}

func TestCorruptionDetected(t *testing.T) {
	m := &memBacking{}
	s := NewWithBacking(m)
	if err := s.Put(1, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	m.corrupt = true // flips the last byte read (the checksum tail)
	if _, err := s.Get(1); err == nil {
		t.Error("Get returned corrupt data without error")
	}
}

// Property: a store behaves exactly like a map for any Put/Get sequence.
func TestStoreMatchesMapProperty(t *testing.T) {
	s := mustOpen(t)
	model := map[int64][]byte{}
	f := func(key uint8, val []byte) bool {
		k := int64(key % 32)
		if err := s.Put(k, val); err != nil {
			return false
		}
		model[k] = append([]byte(nil), val...)
		got, err := s.Get(k)
		if err != nil {
			return false
		}
		return bytes.Equal(got, model[k])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	// Final full check.
	for k, want := range model {
		got, err := s.Get(k)
		if err != nil || !bytes.Equal(got, want) {
			t.Errorf("final Get(%d) = %q, %v; want %q", k, got, err, want)
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := mustOpen(t)
	const workers = 8
	const perWorker = 200
	done := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := 0; i < perWorker; i++ {
				k := int64(w*perWorker + i)
				val := []byte(fmt.Sprintf("w%d-%d", w, i))
				if err := s.Put(k, val); err != nil {
					done <- err
					return
				}
				got, err := s.Get(k)
				if err != nil {
					done <- err
					return
				}
				if !bytes.Equal(got, val) {
					done <- fmt.Errorf("key %d: got %q want %q", k, got, val)
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != workers*perWorker {
		t.Errorf("Len = %d, want %d", s.Len(), workers*perWorker)
	}
}

func BenchmarkPutGet(b *testing.B) {
	s, err := Open()
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	val := make([]byte, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := int64(i % 1024)
		if err := s.Put(k, val); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Get(k); err != nil {
			b.Fatal(err)
		}
	}
}
