package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	cases := []struct {
		line string
		name string
		ns   float64
		ok   bool
	}{
		{"BenchmarkFoo-8 \t 100\t  12345 ns/op\t 10 B/op\t 2 allocs/op", "BenchmarkFoo", 12345, true},
		{"BenchmarkClusterGraph/quadSeq-4 50 2200000 ns/op", "BenchmarkClusterGraph/quadSeq", 2200000, true},
		{"BenchmarkNoProcSuffix 10 99.5 ns/op", "BenchmarkNoProcSuffix", 99.5, true},
		{"BenchmarkTable1KeywordGraph 	     346	   3447388 ns/op", "BenchmarkTable1KeywordGraph", 3447388, true},
		{"PASS", "", 0, false},
		{"Benchmark only two", "", 0, false},
		{"BenchmarkBadValue-8 100 xx ns/op", "", 0, false},
		{"ok  \trepro\t12.3s", "", 0, false},
	}
	for _, c := range cases {
		name, ns, ok := parseBenchLine(c.line)
		if ok != c.ok || name != c.name || ns != c.ns {
			t.Errorf("parseBenchLine(%q) = (%q, %g, %v), want (%q, %g, %v)",
				c.line, name, ns, ok, c.name, c.ns, c.ok)
		}
	}
}

func TestStripProcSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo-8":        "BenchmarkFoo",
		"BenchmarkFoo":          "BenchmarkFoo",
		"BenchmarkFoo/sub-16":   "BenchmarkFoo/sub",
		"BenchmarkFoo/rho0.2-4": "BenchmarkFoo/rho0.2",
		"BenchmarkFoo-abc":      "BenchmarkFoo-abc",
		"BenchmarkFoo-":         "BenchmarkFoo-",
	}
	for in, want := range cases {
		if got := stripProcSuffix(in); got != want {
			t.Errorf("stripProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func writeDump(t *testing.T, lines ...string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseFileTest2JSON(t *testing.T) {
	path := writeDump(t,
		`{"Action":"start","Package":"repro"}`,
		`{"Action":"output","Package":"repro","Output":"BenchmarkFoo-8 \t 100\t 2000 ns/op\n"}`,
		// test2json splits a result across events: name first, timing
		// in a later fragment, newline closing the line.
		`{"Action":"output","Package":"repro","Output":"BenchmarkFoo-8 \t"}`,
		`{"Action":"output","Package":"repro","Output":" 100\t 1500 ns/op\t 3 allocs/op\n"}`, // min wins
		`{"Action":"run","Package":"repro"}`,
		`{"Action":"output","Package":"repro","Output":"BenchmarkBar/x-8 \t 10\t 900 ns/op\n"}`,
		`{"Action":"output","Package":"repro","Output":"PASS\n"}`,
		`not json and not a benchmark`,
		`BenchmarkPlain-2 5 777 ns/op`,
	)
	got, err := parseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got["BenchmarkFoo"] != 1500 || got["BenchmarkBar/x"] != 900 || got["BenchmarkPlain"] != 777 {
		t.Fatalf("parseFile = %v", got)
	}
}

func TestCompare(t *testing.T) {
	oldNs := map[string]float64{"A": 100, "B": 100, "Gone": 50}
	newNs := map[string]float64{"A": 150, "B": 250, "Fresh": 10}
	report, regressed := compare(oldNs, newNs, 2.0)
	if !regressed {
		t.Fatal("2.5x slowdown of B not flagged")
	}
	for _, want := range []string{"REGRESSED", "B", "(no baseline)", "(baseline only)"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	// Exactly at the threshold is allowed (the gate is >, not >=).
	if _, regressed := compare(map[string]float64{"A": 100}, map[string]float64{"A": 200}, 2.0); regressed {
		t.Error("exactly-2x flagged as regression")
	}
	if _, regressed := compare(oldNs, map[string]float64{"A": 120, "B": 199}, 2.0); regressed {
		t.Error("sub-threshold run flagged")
	}
}
