// Command benchdiff turns the CI bench-smoke run into a regression
// gate: it compares a fresh benchmark dump against the committed
// baseline and fails when any benchmark present in both slowed down by
// more than the threshold factor.
//
// Inputs are `go test -json` streams (the BENCH_table1.json format
// written by `make bench`); plain `go test -bench` text is accepted
// too. Benchmarks are matched by name with the trailing -GOMAXPROCS
// suffix stripped, so baselines recorded on different machines still
// line up. With -count > 1 the minimum ns/op per benchmark is used —
// the least-noisy estimate of the true cost.
//
// Usage:
//
//	benchdiff -old BENCH_baseline.json -new BENCH_table1.json
//	benchdiff -old old.json -new new.json -threshold 1.5
//
// Exit status: 0 when no gated benchmark regressed, 1 otherwise.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchdiff: ")
	var (
		oldPath   = flag.String("old", "", "baseline benchmark dump (required)")
		newPath   = flag.String("new", "", "fresh benchmark dump (required)")
		threshold = flag.Float64("threshold", 2.0, "maximum allowed new/old ns/op ratio")
	)
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		log.Fatal("need -old FILE and -new FILE")
	}
	if *threshold <= 1 {
		log.Fatalf("threshold must exceed 1, got %g", *threshold)
	}
	oldNs, err := parseFile(*oldPath)
	if err != nil {
		log.Fatal(err)
	}
	newNs, err := parseFile(*newPath)
	if err != nil {
		log.Fatal(err)
	}
	if len(oldNs) == 0 {
		log.Fatalf("%s contains no benchmark results", *oldPath)
	}
	if len(newNs) == 0 {
		log.Fatalf("%s contains no benchmark results", *newPath)
	}
	report, regressed := compare(oldNs, newNs, *threshold)
	fmt.Print(report)
	if regressed {
		os.Exit(1)
	}
}

// parseFile extracts the minimum ns/op per benchmark name from a
// `go test -json` stream (or plain -bench output). test2json splits
// one benchmark result line across several "output" events (the name
// is emitted before the run, the timing after), so output fragments
// are reassembled into full lines before parsing.
func parseFile(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var text strings.Builder
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "{") {
			var ev struct {
				Action string `json:"Action"`
				Output string `json:"Output"`
			}
			if err := json.Unmarshal([]byte(line), &ev); err == nil {
				if ev.Action == "output" {
					text.WriteString(ev.Output)
				}
				continue
			}
		}
		// Plain `go test -bench` text.
		text.WriteString(line)
		text.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("read %s: %w", path, err)
	}
	out := map[string]float64{}
	for _, line := range strings.Split(text.String(), "\n") {
		name, ns, ok := parseBenchLine(strings.TrimSpace(line))
		if !ok {
			continue
		}
		if prev, seen := out[name]; !seen || ns < prev {
			out[name] = ns
		}
	}
	return out, nil
}

// parseBenchLine parses one `BenchmarkName-8  100  12345 ns/op  ...`
// result line, stripping the -GOMAXPROCS suffix from the name.
func parseBenchLine(line string) (name string, nsPerOp float64, ok bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return "", 0, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", 0, false
	}
	name = fields[0]
	// fields[1] is the iteration count; ns/op is the value whose unit
	// field reads "ns/op".
	for i := 2; i+1 < len(fields); i++ {
		if fields[i+1] == "ns/op" {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil || v <= 0 {
				return "", 0, false
			}
			return stripProcSuffix(name), v, true
		}
	}
	return "", 0, false
}

// stripProcSuffix removes a trailing "-N" (the GOMAXPROCS decoration)
// from a benchmark name, including on sub-benchmarks.
func stripProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i <= 0 || i == len(name)-1 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// compare renders the per-benchmark ratio table and reports whether
// any shared benchmark exceeded the threshold. Benchmarks present in
// only one dump are listed but never gate (new benchmarks must be
// landable; retired ones must not wedge CI).
func compare(oldNs, newNs map[string]float64, threshold float64) (string, bool) {
	names := make([]string, 0, len(newNs))
	for name := range newNs {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	regressed := false
	shared := 0
	for _, name := range names {
		nv := newNs[name]
		ov, ok := oldNs[name]
		if !ok {
			fmt.Fprintf(&b, "  new   %-60s %12.0f ns/op (no baseline)\n", name, nv)
			continue
		}
		shared++
		ratio := nv / ov
		verdict := "ok"
		if ratio > threshold {
			verdict = "REGRESSED"
			regressed = true
		}
		fmt.Fprintf(&b, "  %-5s %-60s %12.0f -> %12.0f ns/op  (%.2fx)\n", verdict, name, ov, nv, ratio)
	}
	for name, ov := range oldNs {
		if _, ok := newNs[name]; !ok {
			fmt.Fprintf(&b, "  gone  %-60s %12.0f ns/op (baseline only)\n", name, ov)
		}
	}
	head := fmt.Sprintf("benchdiff: %d shared benchmarks, threshold %.2fx\n", shared, threshold)
	if regressed {
		head = fmt.Sprintf("benchdiff: REGRESSION — at least one benchmark slowed >%.2fx\n", threshold)
	}
	return head + b.String(), regressed
}
