// Command blogstable runs the end-to-end pipeline of the paper: read a
// temporally ordered corpus (JSONL of {"id","interval","keywords"}
// documents, or a synthetic news week), extract per-interval keyword
// clusters, build the cluster graph, and report the top-k stable
// clusters.
//
// Usage:
//
//	blogstable -demo                          # synthetic news week
//	blogstable -input posts.jsonl -k 5 -l 3   # your own corpus
//	blogstable -input posts.jsonl -normalized -lmin 2
//	blogstable -input posts.jsonl -raw        # analyze raw text first
//	blogstable -demo -simjoin -parallelism 8  # sharded Section 4 pipeline
//
// With -raw, each JSONL document's keywords are treated as raw text
// fragments and run through the tokenizer/stemmer/stop-word filter.
//
// The solver defaults to -algorithm=auto: the Engine's cost-based
// planner picks among the eligible solvers for the graph at hand;
// name one (bfs, dfs, ta, brute) to force it, or pass -plan=off to
// disable planning entirely. -solver-parallelism sets the solvers'
// worker count (0 = GOMAXPROCS, 1 = the sequential ablation path),
// separate from -parallelism, which governs cluster/edge generation.
//
// The run is one Engine session: cluster sets, cluster graph and (for
// -bursts) the keyword index are built once and shared; -clusters
// starts the session at the Section 4 boundary from a saved cluster
// file. Ctrl-C cancels mid-build.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	blogclusters "repro"
	"repro/internal/cli"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("blogstable: ")

	var shared cli.EngineFlags
	shared.Register(flag.CommandLine)
	var (
		raw        = flag.Bool("raw", false, "analyze document keywords as raw text (tokenize/stem/stop words)")
		algorithm  = flag.String("algorithm", "auto", "stable-cluster algorithm: auto (cost-based planner), bfs, dfs, ta, brute")
		k          = flag.Int("k", 5, "number of top stable clusters")
		l          = flag.Int("l", -1, "temporal path length (-1 = full paths)")
		gap        = flag.Int("gap", 1, "gap g: intervals a story may skip")
		theta      = flag.Float64("theta", 0.1, "minimum affinity for a cluster-graph edge")
		affinity   = flag.String("affinity", "jaccard", "affinity: jaccard, intersection, overlap")
		rho        = flag.Float64("rho", 0.2, "correlation-coefficient pruning threshold")
		minSize    = flag.Int("mincluster", 2, "minimum keywords per cluster")
		normalized = flag.Bool("normalized", false, "solve the normalized problem instead (stability = weight/length)")
		lmin       = flag.Int("lmin", 2, "minimum length for -normalized")
		simjoin    = flag.Bool("simjoin", false, "build cluster-graph edges with the prefix-filter similarity join (jaccard affinity only)")
		burstsQ    = flag.String("bursts", "", "comma-separated keywords: report their information bursts before clustering")
		quiet      = flag.Bool("quiet", false, "suppress per-interval cluster listings")
		saveSets   = flag.String("saveclusters", "", "write per-interval clusters to this JSONL file")
		loadSets   = flag.String("clusters", "", "skip cluster generation and load clusters from this JSONL file")
	)
	flag.Parse()

	ctx, stop := cli.SignalContext(context.Background())
	defer stop()

	opts := shared.Options(
		blogclusters.ClusterOptions{RhoThreshold: *rho, MinClusterSize: *minSize},
		blogclusters.GraphOptions{Gap: *gap, Theta: *theta, Affinity: *affinity, UseSimJoin: *simjoin},
	)
	var eng *blogclusters.Engine
	if *loadSets != "" {
		if *burstsQ != "" {
			log.Fatal("-bursts needs a corpus (-input or -demo), not -clusters")
		}
		f, err := os.Open(*loadSets)
		if err != nil {
			log.Fatal(err)
		}
		sets, err := blogclusters.ReadClusterSets(f)
		f.Close()
		if err != nil {
			log.Fatalf("read clusters: %v", err)
		}
		eng, err = blogclusters.Open(ctx, blogclusters.FromClusterSets(sets), opts...)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		src, err := shared.Source()
		if err != nil {
			log.Fatal(err)
		}
		eng, err = blogclusters.Open(ctx, src, opts...)
		if err != nil {
			log.Fatal(err)
		}
		if *raw {
			reanalyze(eng.Collection())
		}
		fmt.Printf("corpus: %d documents across %d intervals\n", eng.Collection().NumDocs(), len(eng.Collection().Intervals))
	}
	// Close the session (removing a temp disk segment) before any fatal
	// exit: log.Fatal would skip a defer.
	err := run(ctx, eng, *burstsQ, *saveSets, *algorithm, *k, *l, *lmin, *gap, *theta, *normalized, *quiet)
	if cerr := eng.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		log.Fatal(err)
	}
}

func run(ctx context.Context, eng *blogclusters.Engine, burstsQ, saveSets, algorithm string, k, l, lmin, gap int, theta float64, normalized, quiet bool) error {
	if burstsQ != "" {
		if err := reportBursts(ctx, eng, burstsQ); err != nil {
			return err
		}
	}
	sets, err := eng.Clusters(ctx)
	if err != nil {
		return fmt.Errorf("cluster generation: %w", err)
	}
	if saveSets != "" {
		// Re-number ids graph-wide so the saved file is self-contained.
		id := int64(0)
		for i := range sets {
			for j := range sets[i] {
				sets[i][j].ID = id
				id++
			}
		}
		f, err := os.Create(saveSets)
		if err != nil {
			return err
		}
		err = blogclusters.WriteClusterSets(f, sets)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("save clusters: %w", err)
		}
		fmt.Printf("saved clusters to %s\n", saveSets)
	}
	for i, cs := range sets {
		fmt.Printf("interval %d: %d clusters\n", i, len(cs))
		if !quiet {
			for _, c := range cs {
				fmt.Printf("  %v\n", c.Keywords)
			}
		}
	}

	g, err := eng.Graph(ctx)
	if err != nil {
		return fmt.Errorf("cluster graph: %w", err)
	}
	fmt.Printf("cluster graph: %d nodes, %d edges (gap %d, theta %g)\n\n", g.NumNodes(), g.NumEdges(), gap, theta)

	var res *blogclusters.Result
	if normalized {
		res, err = eng.NormalizedStableClusters(ctx, k, lmin)
		if err != nil {
			return fmt.Errorf("normalized stable clusters: %w", err)
		}
		fmt.Printf("top %d normalized stable clusters (lmin=%d):\n", k, lmin)
	} else {
		if l < 0 {
			l = blogclusters.FullPaths
		}
		res, err = eng.StableClusters(ctx, algorithm, k, l)
		if err != nil {
			return fmt.Errorf("stable clusters: %w", err)
		}
		fmt.Printf("top %d stable clusters (%s):\n", k, algorithm)
	}
	if len(res.Paths) == 0 {
		fmt.Println("  none found — lower -theta, raise -gap, or shorten -l")
		return nil
	}
	for i, p := range res.Paths {
		desc, err := eng.Describe(ctx, p)
		if err != nil {
			return err
		}
		fmt.Printf("#%d %s\n", i+1, desc)
	}
	st := res.Stats
	fmt.Printf("\nwork: %d node reads, %d node writes, %d edge reads, %d heap offers, %d prunes\n",
		st.NodeReads, st.NodeWrites, st.EdgeReads, st.HeapConsiders, st.Pruned)
	return nil
}

// reportBursts prints each keyword's information bursts, serving the
// time series from the session's index backend (-index=disk keeps the
// posting lists on disk; only term statistics are resident). The
// per-interval totals are computed once and shared across keywords.
func reportBursts(ctx context.Context, eng *blogclusters.Engine, query string) error {
	a := blogclusters.NewAnalyzer()
	for _, raw := range strings.Split(query, ",") {
		raw = strings.TrimSpace(raw)
		// An unanalyzable keyword is a per-keyword notice; everything
		// else (failed index build, I/O errors) fails the command.
		if kws := a.Keywords(raw); len(kws) == 0 {
			fmt.Printf("bursts %q: no analyzable keyword\n", raw)
			continue
		}
		bursts, err := eng.Bursts(ctx, raw)
		if err != nil {
			return fmt.Errorf("bursts %q: %w", raw, err)
		}
		if len(bursts) == 0 {
			fmt.Printf("bursts %q: none\n", raw)
			continue
		}
		fmt.Printf("bursts %q:", raw)
		for _, b := range bursts {
			fmt.Printf(" t%d..t%d (score %.1f)", b.Start, b.End, b.Score)
		}
		fmt.Println()
	}
	return nil
}

// reanalyze pushes every document's keyword list through the text
// analyzer, so corpora exported with raw text fragments behave like
// the paper's stemmed, stop-word-free input. It must run before the
// first Engine query materializes an artifact.
func reanalyze(col *blogclusters.Collection) {
	a := blogclusters.NewAnalyzer()
	for i := range col.Intervals {
		for j := range col.Intervals[i].Docs {
			d := &col.Intervals[i].Docs[j]
			d.Keywords = a.Keywords(strings.Join(d.Keywords, " "))
		}
	}
}
