// Command blogstable runs the end-to-end pipeline of the paper: read a
// temporally ordered corpus (JSONL of {"id","interval","keywords"}
// documents, or a synthetic news week), extract per-interval keyword
// clusters, build the cluster graph, and report the top-k stable
// clusters.
//
// Usage:
//
//	blogstable -demo                          # synthetic news week
//	blogstable -input posts.jsonl -k 5 -l 3   # your own corpus
//	blogstable -input posts.jsonl -normalized -lmin 2
//	blogstable -input posts.jsonl -raw        # analyze raw text first
//	blogstable -demo -simjoin -parallelism 8  # sharded Section 4 pipeline
//
// With -raw, each JSONL document's keywords are treated as raw text
// fragments and run through the tokenizer/stemmer/stop-word filter.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	blogclusters "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("blogstable: ")

	var (
		input      = flag.String("input", "", "JSONL corpus file (one document per line)")
		demo       = flag.Bool("demo", false, "run on the synthetic news-week corpus")
		raw        = flag.Bool("raw", false, "analyze document keywords as raw text (tokenize/stem/stop words)")
		algorithm  = flag.String("algorithm", "bfs", "stable-cluster algorithm: bfs, dfs, ta, brute")
		k          = flag.Int("k", 5, "number of top stable clusters")
		l          = flag.Int("l", -1, "temporal path length (-1 = full paths)")
		gap        = flag.Int("gap", 1, "gap g: intervals a story may skip")
		theta      = flag.Float64("theta", 0.1, "minimum affinity for a cluster-graph edge")
		affinity   = flag.String("affinity", "jaccard", "affinity: jaccard, intersection, overlap")
		rho        = flag.Float64("rho", 0.2, "correlation-coefficient pruning threshold")
		minSize    = flag.Int("mincluster", 2, "minimum keywords per cluster")
		normalized = flag.Bool("normalized", false, "solve the normalized problem instead (stability = weight/length)")
		lmin       = flag.Int("lmin", 2, "minimum length for -normalized")
		simjoin    = flag.Bool("simjoin", false, "build cluster-graph edges with the prefix-filter similarity join (jaccard affinity only)")
		par        = flag.Int("parallelism", 0, "worker count for cluster generation and edge generation; 0 = GOMAXPROCS, 1 = sequential")
		memBud     = flag.Int("membudget", 0, "pair-table memory budget in bytes, split across concurrent interval builds; 0 = default")
		burstsQ    = flag.String("bursts", "", "comma-separated keywords: report their information bursts before clustering")
		backend    = flag.String("index", "mem", "keyword-index backend for -bursts: mem or disk")
		idxCache   = flag.Int("indexcache", 0, "disk index backend: block-cache budget in bytes; 0 = default")
		quiet      = flag.Bool("quiet", false, "suppress per-interval cluster listings")
		saveSets   = flag.String("saveclusters", "", "write per-interval clusters to this JSONL file")
		loadSets   = flag.String("clusters", "", "skip cluster generation and load clusters from this JSONL file")
	)
	flag.Parse()

	var sets [][]blogclusters.Cluster
	if *burstsQ != "" && *loadSets != "" {
		log.Fatal("-bursts needs a corpus (-input or -demo), not -clusters")
	}
	if *loadSets != "" {
		f, err := os.Open(*loadSets)
		if err != nil {
			log.Fatal(err)
		}
		sets, err = blogclusters.ReadClusterSets(f)
		f.Close()
		if err != nil {
			log.Fatalf("read clusters: %v", err)
		}
	} else {
		col, err := loadCorpus(*input, *demo)
		if err != nil {
			log.Fatal(err)
		}
		if *raw {
			reanalyze(col)
		}
		fmt.Printf("corpus: %d documents across %d intervals\n", col.NumDocs(), len(col.Intervals))
		if *burstsQ != "" {
			if err := reportBursts(col, *burstsQ, *backend, *idxCache); err != nil {
				log.Fatal(err)
			}
		}
		sets, err = blogclusters.AllIntervalClusters(col, blogclusters.ClusterOptions{
			RhoThreshold:   *rho,
			MinClusterSize: *minSize,
			Parallelism:    *par,
			MemBudget:      *memBud,
		})
		if err != nil {
			log.Fatalf("cluster generation: %v", err)
		}
	}
	if *saveSets != "" {
		// Re-number ids graph-wide so the saved file is self-contained.
		id := int64(0)
		for i := range sets {
			for j := range sets[i] {
				sets[i][j].ID = id
				id++
			}
		}
		f, err := os.Create(*saveSets)
		if err != nil {
			log.Fatal(err)
		}
		err = blogclusters.WriteClusterSets(f, sets)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatalf("save clusters: %v", err)
		}
		fmt.Printf("saved clusters to %s\n", *saveSets)
	}
	for i, cs := range sets {
		fmt.Printf("interval %d: %d clusters\n", i, len(cs))
		if !*quiet {
			for _, c := range cs {
				fmt.Printf("  %v\n", c.Keywords)
			}
		}
	}

	g, err := blogclusters.BuildClusterGraph(sets, blogclusters.GraphOptions{
		Gap: *gap, Theta: *theta, Affinity: *affinity,
		UseSimJoin: *simjoin, Parallelism: *par,
	})
	if err != nil {
		log.Fatalf("cluster graph: %v", err)
	}
	fmt.Printf("cluster graph: %d nodes, %d edges (gap %d, theta %g)\n\n", g.NumNodes(), g.NumEdges(), *gap, *theta)

	var res *blogclusters.Result
	if *normalized {
		res, err = blogclusters.NormalizedStableClusters(g, *k, *lmin)
		if err != nil {
			log.Fatalf("normalized stable clusters: %v", err)
		}
		fmt.Printf("top %d normalized stable clusters (lmin=%d):\n", *k, *lmin)
	} else {
		length := *l
		if length < 0 {
			length = blogclusters.FullPaths
		}
		res, err = blogclusters.StableClusters(g, *algorithm, *k, length)
		if err != nil {
			log.Fatalf("stable clusters: %v", err)
		}
		fmt.Printf("top %d stable clusters (%s):\n", *k, *algorithm)
	}
	if len(res.Paths) == 0 {
		fmt.Println("  none found — lower -theta, raise -gap, or shorten -l")
		return
	}
	for i, p := range res.Paths {
		fmt.Printf("#%d %s\n", i+1, blogclusters.DescribePath(g, p))
	}
	st := res.Stats
	fmt.Printf("\nwork: %d node reads, %d node writes, %d edge reads, %d heap offers, %d prunes\n",
		st.NodeReads, st.NodeWrites, st.EdgeReads, st.HeapConsiders, st.Pruned)
}

// reportBursts prints each keyword's information bursts, serving the
// time series from the selected index backend (-index=disk keeps the
// posting lists on disk; only term statistics are resident).
func reportBursts(col *blogclusters.Collection, query, backend string, cacheBytes int) error {
	idx, err := blogclusters.OpenIndexReader(col, blogclusters.IndexOptions{
		Backend:   backend,
		MemBudget: cacheBytes,
	})
	if err != nil {
		return fmt.Errorf("index (%s backend): %w", backend, err)
	}
	// Close before the caller can log.Fatal, so a temp disk segment is
	// always removed.
	defer idx.Close()
	a := blogclusters.NewAnalyzer()
	for _, raw := range strings.Split(query, ",") {
		kws := a.Keywords(raw)
		if len(kws) == 0 {
			fmt.Printf("bursts %q: no analyzable keyword\n", strings.TrimSpace(raw))
			continue
		}
		kw := kws[0]
		bursts, err := blogclusters.DetectBurstsIn(idx, kw)
		if err != nil {
			return fmt.Errorf("bursts %q: %w", kw, err)
		}
		if len(bursts) == 0 {
			fmt.Printf("bursts %q: none\n", kw)
			continue
		}
		fmt.Printf("bursts %q:", kw)
		for _, b := range bursts {
			fmt.Printf(" t%d..t%d (score %.1f)", b.Start, b.End, b.Score)
		}
		fmt.Println()
	}
	return nil
}

func loadCorpus(input string, demo bool) (*blogclusters.Collection, error) {
	switch {
	case demo && input != "":
		return nil, fmt.Errorf("pass either -demo or -input, not both")
	case demo:
		return blogclusters.GenerateCorpus(blogclusters.NewsWeekCorpus(2007, 600))
	case input == "":
		return nil, fmt.Errorf("need -input FILE or -demo (see -help)")
	}
	f, err := os.Open(input)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	col, err := blogclusters.ReadJSONL(f)
	if err != nil {
		return nil, fmt.Errorf("read %s: %w", input, err)
	}
	return col, nil
}

// reanalyze pushes every document's keyword list through the text
// analyzer, so corpora exported with raw text fragments behave like
// the paper's stemmed, stop-word-free input.
func reanalyze(col *blogclusters.Collection) {
	a := blogclusters.NewAnalyzer()
	for i := range col.Intervals {
		for j := range col.Intervals[i].Docs {
			d := &col.Intervals[i].Docs[j]
			d.Keywords = a.Keywords(strings.Join(d.Keywords, " "))
		}
	}
}
