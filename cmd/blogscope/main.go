// Command blogscope is a miniature of the search-and-analysis system
// the paper is built on (Section 1): given a corpus and a query
// keyword, it reports the keyword's document-frequency time series,
// its information bursts, its strongest pairwise correlations per
// interval, the keyword cluster it falls into, and query-refinement
// suggestions.
//
// Usage:
//
//	blogscope -demo -query somalia
//	blogscope -input posts.jsonl -query iphone -interval 3
//	blogscope -demo -query somalia -index disk -indexcache 4194304
//
// With -index=disk the keyword primitives are served from an on-disk
// posting segment (see README.md) instead of resident maps, so corpora
// larger than RAM stay queryable.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	blogclusters "repro"
	"repro/internal/cooccur"
	"repro/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("blogscope: ")

	var (
		input    = flag.String("input", "", "JSONL corpus file")
		demo     = flag.Bool("demo", false, "use the synthetic news-week corpus")
		query    = flag.String("query", "", "query keyword (required)")
		interval = flag.Int("interval", -1, "interval for cluster/correlation detail (-1 = the keyword's peak)")
		topN     = flag.Int("top", 5, "number of correlations to show")
		par      = flag.Int("parallelism", 0, "keyword-graph worker count; 0 = GOMAXPROCS, 1 = sequential")
		memBud   = flag.Int("membudget", 0, "pair-table memory budget in bytes; 0 = default")
		backend  = flag.String("index", "mem", "keyword-index backend: mem (resident) or disk (segment file + LRU block cache)")
		idxCache = flag.Int("indexcache", 0, "disk backend: block-cache budget in bytes; 0 = default (8 MiB)")
		idxPath  = flag.String("indexfile", "", "disk backend: segment file path; empty = private temp file")
	)
	flag.Parse()
	if *query == "" {
		log.Fatal("need -query KEYWORD")
	}

	col, err := loadCorpus(*input, *demo)
	if err != nil {
		log.Fatal(err)
	}
	// Analyze the query the same way the corpus was analyzed.
	kws := blogclusters.NewAnalyzer().Keywords(*query)
	if len(kws) == 0 {
		log.Fatalf("query %q has no analyzable keyword", *query)
	}
	kw := kws[0]
	fmt.Printf("query %q → keyword %q\n\n", *query, kw)

	idx, err := blogclusters.OpenIndexReader(col, blogclusters.IndexOptions{
		Backend:   *backend,
		Path:      *idxPath,
		MemBudget: *idxCache,
	})
	if err != nil {
		log.Fatalf("index: %v", err)
	}
	// Close (removing a temp disk segment) before any fatal exit:
	// log.Fatal would skip a defer.
	err = report(col, idx, kw, *interval, *topN, *par, *memBud)
	if cerr := idx.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		log.Fatal(err)
	}
}

// report renders the whole analysis for one keyword: time series,
// bursts, correlations, cluster membership and refinements.
func report(col *blogclusters.Collection, idx blogclusters.IndexReader, kw string, interval, topN, par, memBud int) error {
	// Time series + bursts.
	series, err := idx.TimeSeries(kw)
	if err != nil {
		return fmt.Errorf("time series: %w", err)
	}
	fmt.Println("documents per interval:")
	peak, peakAt := int64(-1), 0
	for i, c := range series {
		bar := strings.Repeat("#", int(min64(c, 60)))
		fmt.Printf("  t%-3d %6d %s\n", i, c, bar)
		if c > peak {
			peak, peakAt = c, i
		}
	}
	bursts, err := blogclusters.DetectBurstsIn(idx, kw)
	if err != nil {
		return fmt.Errorf("bursts: %w", err)
	}
	if len(bursts) == 0 {
		fmt.Println("\nno information bursts detected")
	} else {
		fmt.Println("\ninformation bursts:")
		for _, b := range bursts {
			fmt.Printf("  intervals %d..%d (score %.1f)\n", b.Start, b.End, b.Score)
		}
	}

	day := interval
	if day < 0 {
		day = peakAt
	}
	if day >= len(col.Intervals) {
		return fmt.Errorf("interval %d outside corpus (%d intervals)", day, len(col.Intervals))
	}

	// Strongest correlations on the chosen day.
	kg, err := cooccur.Build(col, day, day, cooccur.BuildOptions{Parallelism: par, MemBudget: memBud})
	if err != nil {
		return fmt.Errorf("keyword graph: %w", err)
	}
	kg.AnnotateStats()
	pruned := kg.Prune(stats.ChiSquared95, 0) // keep all significant pairs
	fmt.Printf("\nstrongest correlations at t%d:\n", day)
	for _, c := range pruned.StrongestCorrelations(kw, topN) {
		fmt.Printf("  %-20s ρ=%.3f  together in %d posts\n", c.Keyword, c.Rho, c.Count)
	}

	// Cluster membership + refinement.
	clusters, err := blogclusters.IntervalClusters(col, day, blogclusters.ClusterOptions{Parallelism: par, MemBudget: memBud})
	if err != nil {
		return fmt.Errorf("clusters: %w", err)
	}
	refinements := blogclusters.RefineQuery(clusters, kw)
	if refinements == nil {
		fmt.Printf("\n%q is not in any keyword cluster at t%d\n", kw, day)
		return nil
	}
	fmt.Printf("\nkeyword cluster at t%d: %v\n", day, append([]string{kw}, refinements...))
	fmt.Printf("query refinements: %v\n", refinements)
	return nil
}

func loadCorpus(input string, demo bool) (*blogclusters.Collection, error) {
	switch {
	case demo && input != "":
		return nil, fmt.Errorf("pass either -demo or -input, not both")
	case demo:
		return blogclusters.GenerateCorpus(blogclusters.NewsWeekCorpus(2007, 600))
	case input == "":
		return nil, fmt.Errorf("need -input FILE or -demo")
	}
	f, err := os.Open(input)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return blogclusters.ReadJSONL(f)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
