// Command blogscope is a miniature of the search-and-analysis system
// the paper is built on (Section 1): given a corpus and a query
// keyword, it reports the keyword's document-frequency time series,
// its information bursts, its strongest pairwise correlations per
// interval, the keyword cluster it falls into, and query-refinement
// suggestions.
//
// Usage:
//
//	blogscope -demo -query somalia
//	blogscope -input posts.jsonl -query iphone -interval 3
//	blogscope -demo -query somalia -index disk -indexcache 4194304
//
// With -index=disk the keyword primitives are served from an on-disk
// posting segment (see README.md) instead of resident maps, so corpora
// larger than RAM stay queryable.
//
// The command is one Engine session: the index, the interval keyword
// graph and the interval clusters are each built once and shared by
// the report's queries. Ctrl-C cancels mid-build.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strings"

	blogclusters "repro"
	"repro/internal/cli"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("blogscope: ")

	var shared cli.EngineFlags
	shared.Register(flag.CommandLine)
	var (
		query    = flag.String("query", "", "query keyword (required)")
		interval = flag.Int("interval", -1, "interval for cluster/correlation detail (-1 = the keyword's peak)")
		topN     = flag.Int("top", 5, "number of correlations to show")
	)
	flag.Parse()
	if *query == "" {
		log.Fatal("need -query KEYWORD")
	}
	src, err := shared.Source()
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := cli.SignalContext(context.Background())
	defer stop()

	eng, err := blogclusters.Open(ctx, src, shared.Options(blogclusters.ClusterOptions{}, blogclusters.GraphOptions{})...)
	if err != nil {
		log.Fatal(err)
	}
	// Close (removing a temp disk segment) before any fatal exit:
	// log.Fatal would skip a defer.
	err = report(ctx, eng, *query, *interval, *topN)
	if cerr := eng.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		log.Fatal(err)
	}
}

// report renders the whole analysis for one keyword: time series,
// bursts, correlations, cluster membership and refinements. Every
// query runs against the shared Engine session.
func report(ctx context.Context, eng *blogclusters.Engine, query string, interval, topN int) error {
	fmt.Printf("query %q\n\n", query)

	// Time series + bursts.
	series, err := eng.TimeSeries(ctx, query)
	if err != nil {
		return fmt.Errorf("time series: %w", err)
	}
	fmt.Println("documents per interval:")
	peak, peakAt := int64(-1), 0
	for i, c := range series {
		bar := strings.Repeat("#", int(min(c, 60)))
		fmt.Printf("  t%-3d %6d %s\n", i, c, bar)
		if c > peak {
			peak, peakAt = c, i
		}
	}
	bursts, err := eng.Bursts(ctx, query)
	if err != nil {
		return fmt.Errorf("bursts: %w", err)
	}
	if len(bursts) == 0 {
		fmt.Println("\nno information bursts detected")
	} else {
		fmt.Println("\ninformation bursts:")
		for _, b := range bursts {
			fmt.Printf("  intervals %d..%d (score %.1f)\n", b.Start, b.End, b.Score)
		}
	}

	day := interval
	if day < 0 {
		day = peakAt
	}

	// Strongest correlations on the chosen day.
	correlations, err := eng.Correlations(ctx, query, day, topN)
	if err != nil {
		return fmt.Errorf("correlations: %w", err)
	}
	fmt.Printf("\nstrongest correlations at t%d:\n", day)
	for _, c := range correlations {
		fmt.Printf("  %-20s ρ=%.3f  together in %d posts\n", c.Keyword, c.Rho, c.Count)
	}

	// Cluster membership + refinement.
	refinements, err := eng.Refine(ctx, query, day)
	if err != nil {
		return fmt.Errorf("refine: %w", err)
	}
	if refinements == nil {
		fmt.Printf("\n%q is not in any keyword cluster at t%d\n", query, day)
		return nil
	}
	fmt.Printf("\nkeyword cluster at t%d: %v\n", day, append([]string{query}, refinements...))
	fmt.Printf("query refinements: %v\n", refinements)
	return nil
}
