// Command experiments regenerates the tables and figures of the
// paper's evaluation (Section 5). Each experiment prints the rows or
// series the paper reports; absolute numbers differ (synthetic data,
// different hardware and runtime) but the shapes — who wins, by what
// factor, where the crossovers fall — reproduce.
//
// Usage:
//
//	experiments -exp table3            # one experiment at default scale
//	experiments -exp all -scale 1.0    # the full suite at paper scale
//	experiments -exp table1 -parallelism 1   # sequential ablation
//	experiments -exp clustergraph      # Section 4.1 quadratic vs simjoin
//	experiments -list                  # list experiment ids
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id, or 'all'")
	scale := flag.Float64("scale", 0.25, "workload scale in (0,1]; 1.0 = the paper's parameters")
	parallelism := flag.Int("parallelism", 0, "keyword-graph worker count; 0 = GOMAXPROCS, 1 = sequential ablation path")
	memBudget := flag.Int("membudget", 0, "pair-table memory budget in bytes before shards spill; 0 = default (256 MiB)")
	indexBackend := flag.String("index", "", "diskindex experiment: restrict to one backend (mem or disk); empty runs both")
	indexCache := flag.Int("indexcache", 0, "diskindex experiment: disk block-cache budget in bytes; 0 = default")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return
	}
	cfg := experiments.Config{
		Scale:          experiments.Scale(*scale),
		Parallelism:    *parallelism,
		MemBudget:      *memBudget,
		IndexBackend:   *indexBackend,
		IndexMemBudget: *indexCache,
	}
	fmt.Printf("keyword-graph workers: %d\n", cfg.Workers())
	ids := experiments.IDs()
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}
	// Ctrl-C cancels the pipeline stages that poll the context
	// (keyword-graph builds, disk segment builds, extsort merges).
	ctx, stop := cli.SignalContext(context.Background())
	defer stop()
	start := time.Now()
	for _, id := range ids {
		t, err := experiments.RunContext(ctx, strings.TrimSpace(id), cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(t.Render())
	}
	fmt.Printf("total: %s (scale %.2f, workers %d)\n", time.Since(start).Round(time.Millisecond), *scale, cfg.Workers())
}
