// Command blogserved serves the blogclusters query surface over HTTP:
// one long-running Engine session (the paper's BlogScope deployment
// shape — load the corpus once, answer many analysis queries) behind
// the production plumbing of internal/server: admission control,
// per-request deadlines, a single-flight LRU response cache,
// structured access logs and debug stats.
//
// Usage:
//
//	blogserved -demo                                # synthetic news week
//	blogserved -input posts.jsonl -addr :8080
//	blogserved -demo -index disk -max-inflight 128 -cache-bytes 33554432
//	blogserved -demo -cache-ttl 30s -breaker-cooldown 5s
//
// The listener comes up immediately; the corpus loads in the
// background and /readyz flips to 200 when the session is attached,
// so orchestrators can health-check during a slow load. If the load
// fails, the process stays up serving 503s with the open error
// surfaced on /readyz rather than exiting into a crash loop. SIGINT or
// SIGTERM drains: the listener stops accepting, in-flight requests
// finish (up to -drain-timeout), then the session closes (canceling
// any still-running builds and removing a temp disk segment). See
// README.md for the endpoint reference and curl examples.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"log/slog"
	"net/http"
	"os"
	"time"

	blogclusters "repro"
	"repro/internal/cli"
	"repro/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("blogserved: ")

	var shared cli.EngineFlags
	shared.Register(flag.CommandLine)
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		maxInflight  = flag.Int("max-inflight", server.DefaultMaxInflight, "max concurrently admitted /v1 queries; overflow gets 429 + Retry-After")
		cacheBytes   = flag.Int("cache-bytes", server.DefaultCacheBytes, "response-cache budget in bytes; negative disables caching")
		reqTimeout   = flag.Duration("request-timeout", server.DefaultRequestTimeout, "per-request query deadline")
		cacheTTL     = flag.Duration("cache-ttl", 0, "response-cache freshness window; expired entries serve stale on refill failure (0 = never expire)")
		breakerCool  = flag.Duration("breaker-cooldown", server.DefaultBreakerCooldown, "how long a tripped per-route circuit breaker sheds before probing")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight requests")
		readHeaderTO = flag.Duration("read-header-timeout", 10*time.Second, "http.Server ReadHeaderTimeout: drop clients that stall mid-header (slowloris)")
		idleTimeout  = flag.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout: close keep-alive connections idle this long")
		gap          = flag.Int("gap", 1, "gap g for the session's default cluster graph")
		theta        = flag.Float64("theta", 0.1, "minimum affinity for a cluster-graph edge")
		simjoin      = flag.Bool("simjoin", false, "build cluster-graph edges with the prefix-filter similarity join")
	)
	flag.Parse()

	src, err := shared.Source()
	if err != nil {
		log.Fatal(err)
	}

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	srv := server.New(server.Config{
		MaxInflight:     *maxInflight,
		CacheBytes:      *cacheBytes,
		RequestTimeout:  *reqTimeout,
		CacheTTL:        *cacheTTL,
		BreakerCooldown: *breakerCool,
		Logger:          logger,
	})

	ctx, stop := cli.SignalContext(context.Background())

	// Load the corpus in the background so the listener (and /healthz,
	// /readyz probes) come up immediately; queries 503 until the
	// session attaches. A signal during the load cancels Open. Every
	// exit path joins loadDone before closing the engine: SetEngine
	// must not race past closeEngine, or a just-attached session (and
	// its temp disk segment) would leak.
	engineErr := make(chan error, 1)
	loadDone := make(chan struct{})
	go func() {
		defer close(loadDone)
		opts := shared.Options(
			blogclusters.ClusterOptions{},
			blogclusters.GraphOptions{Gap: *gap, Theta: *theta, UseSimJoin: *simjoin},
		)
		eng, err := blogclusters.Open(ctx, src, opts...)
		if err != nil {
			engineErr <- err
			return
		}
		srv.SetEngine(eng)
		logger.Info("engine ready")
	}()

	httpSrv := &http.Server{
		Addr:    *addr,
		Handler: srv.Handler(),
		// Slowloris/idle hygiene: a client that never finishes its
		// headers or parks a keep-alive connection must not hold a file
		// descriptor forever. Per-request work is already bounded by the
		// admission semaphore and -request-timeout, so these only govern
		// the connection lifecycle around requests.
		ReadHeaderTimeout: *readHeaderTO,
		IdleTimeout:       *idleTimeout,
	}

	serveErr := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr)
		serveErr <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-serveErr:
		// Listener died before any signal (bad addr, port in use).
		stop()
		<-loadDone
		closeEngine(srv, logger)
		log.Fatal(err)
	case err := <-engineErr:
		// A signal during the load cancels Open; that is the graceful
		// path (fall through to the drain), not a startup failure. The
		// select races with ctx.Done when both are ready, so the branch
		// must distinguish the two itself. A real open failure does NOT
		// kill the process: the server keeps serving — /healthz 200,
		// /readyz failing with this error in the body, /v1 503s — so
		// operators can read the diagnosis off the running instance
		// instead of spelunking restart loops. A signal still exits.
		if ctx.Err() == nil || !errors.Is(err, context.Canceled) {
			srv.SetOpenError(err)
			logger.Error("engine open failed; serving 503s", "err", err)
			<-ctx.Done()
		}
	case <-ctx.Done():
	}

	// Graceful drain: release the signal registration first so a
	// second SIGINT/SIGTERM force-quits, then stop accepting and let
	// in-flight requests finish, then close the session.
	stop()
	logger.Info("draining", "timeout", drainTimeout.String())
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		logger.Error("drain incomplete", "err", err)
		httpSrv.Close()
	}
	// The canceled ctx aborts a still-running Open at its next poll;
	// wait for it so the engine cannot attach after the close below.
	<-loadDone
	closeEngine(srv, logger)
	logger.Info("drained; exiting")
}

// closeEngine closes the session if it ever attached, logging (not
// dying on) close errors — at this point the process is exiting and
// the only useful action is to report.
func closeEngine(srv *server.Server, logger *slog.Logger) {
	eng := srv.Engine()
	if eng == nil {
		return
	}
	if err := eng.Close(); err != nil && !errors.Is(err, context.Canceled) {
		logger.Error("engine close", "err", err)
	}
}
