// Command blogserved serves the blogclusters query surface over HTTP:
// one long-running Engine session (the paper's BlogScope deployment
// shape — load the corpus once, answer many analysis queries) behind
// the production plumbing of internal/server: admission control,
// per-request deadlines, a single-flight LRU response cache,
// structured access logs and debug stats.
//
// Usage:
//
//	blogserved -demo                                # synthetic news week
//	blogserved -input posts.jsonl -addr :8080
//	blogserved -demo -index disk -max-inflight 128 -cache-bytes 33554432
//	blogserved -demo -cache-ttl 30s -breaker-cooldown 5s
//	blogserved -demo -pprof localhost:6060          # profiling sidecar
//
// Sharded serving (internal/shard): the same binary runs all three
// roles. A shard server is an ordinary blogserved holding a contiguous
// interval slice of the corpus; a coordinator fans queries out over
// shard servers (or over in-process shard engines) and serves the
// merged answers on the identical HTTP surface:
//
//	blogserved -demo -intervals 0:4 -addr :8081     # shard server 0
//	blogserved -demo -intervals 4:7 -addr :8082     # shard server 1
//	blogserved -shards localhost:8081,localhost:8082 -addr :8080
//	blogserved -demo -shard-count 2                 # in-process shards
//
// The listener comes up immediately; the corpus loads in the
// background and /readyz flips to 200 when the session is attached,
// so orchestrators can health-check during a slow load. If the load
// fails, the process stays up serving 503s with the open error
// surfaced on /readyz rather than exiting into a crash loop. SIGINT or
// SIGTERM drains: the listener stops accepting, in-flight requests
// finish (up to -drain-timeout), then the session closes (canceling
// any still-running builds and removing a temp disk segment). See
// README.md for the endpoint reference and curl examples.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"time"

	blogclusters "repro"
	"repro/internal/cli"
	"repro/internal/server"
	"repro/internal/shard"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("blogserved: ")

	var shared cli.EngineFlags
	shared.Register(flag.CommandLine)
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		maxInflight  = flag.Int("max-inflight", server.DefaultMaxInflight, "max concurrently admitted /v1 queries; overflow gets 429 + Retry-After")
		cacheBytes   = flag.Int("cache-bytes", server.DefaultCacheBytes, "response-cache budget in bytes; negative disables caching")
		reqTimeout   = flag.Duration("request-timeout", server.DefaultRequestTimeout, "per-request query deadline")
		cacheTTL     = flag.Duration("cache-ttl", 0, "response-cache freshness window; expired entries serve stale on refill failure (0 = never expire)")
		breakerCool  = flag.Duration("breaker-cooldown", server.DefaultBreakerCooldown, "how long a tripped per-route circuit breaker sheds before probing")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight requests")
		readHeaderTO = flag.Duration("read-header-timeout", 10*time.Second, "http.Server ReadHeaderTimeout: drop clients that stall mid-header (slowloris)")
		idleTimeout  = flag.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout: close keep-alive connections idle this long")
		gap          = flag.Int("gap", 1, "gap g for the session's default cluster graph")
		theta        = flag.Float64("theta", 0.1, "minimum affinity for a cluster-graph edge")
		simjoin      = flag.Bool("simjoin", false, "build cluster-graph edges with the prefix-filter similarity join")
		shardList    = flag.String("shards", "", "comma-separated shard server addresses in interval order (host:port,...); serve as their scatter-gather coordinator instead of loading a corpus")
		shardCount   = flag.Int("shard-count", 0, "split the corpus into N in-process shard engines behind a coordinator (single-binary sharded serving)")
		shardWait    = flag.Duration("shards-wait", time.Minute, "how long the coordinator waits for every shard server's /readyz at startup")
		pprofAddr    = flag.String("pprof", "", "serve net/http/pprof on this extra listener (e.g. localhost:6060); empty disables profiling")
	)
	flag.Parse()

	var src blogclusters.Source
	var err error
	switch {
	case *shardList != "" && *shardCount > 0:
		log.Fatal("pass either -shards or -shard-count, not both")
	case *shardList != "":
		// The corpus lives on the shard servers; a coordinator loads
		// nothing locally.
		if shared.Input != "" || shared.Demo {
			log.Fatal("-shards is a coordinator: the corpus is loaded by the shard servers, drop -input/-demo")
		}
	case *shardCount > 0:
		// In-process sharding materializes the collection to split it;
		// the loader goroutine does the work, validate the flags here.
		if !shared.Demo && shared.Input == "" {
			log.Fatal("need -input FILE or -demo (see -help)")
		}
		if shared.Intervals != "" {
			log.Fatal("-shard-count splits the whole corpus; drop -intervals")
		}
	default:
		src, err = shared.Source()
		if err != nil {
			log.Fatal(err)
		}
	}

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	if *pprofAddr != "" {
		stopPprof, err := cli.StartPprof(*pprofAddr, logger)
		if err != nil {
			log.Fatal(err)
		}
		defer stopPprof()
	}
	srv := server.New(server.Config{
		MaxInflight:     *maxInflight,
		CacheBytes:      *cacheBytes,
		RequestTimeout:  *reqTimeout,
		CacheTTL:        *cacheTTL,
		BreakerCooldown: *breakerCool,
		Logger:          logger,
	})

	ctx, stop := cli.SignalContext(context.Background())

	// Load the corpus in the background so the listener (and /healthz,
	// /readyz probes) come up immediately; queries 503 until the
	// session attaches. A signal during the load cancels Open. Every
	// exit path joins loadDone before closing the engine: SetEngine
	// must not race past closeEngine, or a just-attached session (and
	// its temp disk segment) would leak.
	engineErr := make(chan error, 1)
	loadDone := make(chan struct{})
	go func() {
		defer close(loadDone)
		graph := blogclusters.GraphOptions{Gap: *gap, Theta: *theta, UseSimJoin: *simjoin}
		copts := shard.Options{
			Graph:             graph,
			PlanMode:          shared.PlanMode,
			SolverParallelism: shared.SolverParallelism,
		}
		var sess server.Session
		var err error
		switch {
		case *shardList != "":
			sess, err = openRemoteCoordinator(ctx, *shardList, *shardWait, copts, logger)
		case *shardCount > 0:
			var col *blogclusters.Collection
			if col, err = shared.Collection(); err == nil {
				sess, err = shard.OpenInProcess(ctx, col, *shardCount, copts,
					shared.Options(blogclusters.ClusterOptions{}, graph)...)
			}
		default:
			sess, err = blogclusters.Open(ctx, src,
				shared.Options(blogclusters.ClusterOptions{}, graph)...)
		}
		if err != nil {
			engineErr <- err
			return
		}
		srv.SetEngine(sess)
		logger.Info("session ready")
	}()

	httpSrv := &http.Server{
		Addr:    *addr,
		Handler: srv.Handler(),
		// Slowloris/idle hygiene: a client that never finishes its
		// headers or parks a keep-alive connection must not hold a file
		// descriptor forever. Per-request work is already bounded by the
		// admission semaphore and -request-timeout, so these only govern
		// the connection lifecycle around requests.
		ReadHeaderTimeout: *readHeaderTO,
		IdleTimeout:       *idleTimeout,
	}

	serveErr := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr)
		serveErr <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-serveErr:
		// Listener died before any signal (bad addr, port in use).
		stop()
		<-loadDone
		closeEngine(srv, logger)
		log.Fatal(err)
	case err := <-engineErr:
		// A signal during the load cancels Open; that is the graceful
		// path (fall through to the drain), not a startup failure. The
		// select races with ctx.Done when both are ready, so the branch
		// must distinguish the two itself. A real open failure does NOT
		// kill the process: the server keeps serving — /healthz 200,
		// /readyz failing with this error in the body, /v1 503s — so
		// operators can read the diagnosis off the running instance
		// instead of spelunking restart loops. A signal still exits.
		if ctx.Err() == nil || !errors.Is(err, context.Canceled) {
			srv.SetOpenError(err)
			logger.Error("engine open failed; serving 503s", "err", err)
			<-ctx.Done()
		}
	case <-ctx.Done():
	}

	// Graceful drain: release the signal registration first so a
	// second SIGINT/SIGTERM force-quits, then stop accepting and let
	// in-flight requests finish, then close the session.
	stop()
	logger.Info("draining", "timeout", drainTimeout.String())
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		logger.Error("drain incomplete", "err", err)
		httpSrv.Close()
	}
	// The canceled ctx aborts a still-running Open at its next poll;
	// wait for it so the engine cannot attach after the close below.
	<-loadDone
	closeEngine(srv, logger)
	logger.Info("drained; exiting")
}

// openRemoteCoordinator assembles a shard.Coordinator over the shard
// servers listed in spec (comma-separated, interval order), waiting up
// to wait for every shard's /readyz so a fleet coming up together
// settles into a working coordinator without ordering ceremony.
func openRemoteCoordinator(ctx context.Context, spec string, wait time.Duration, copts shard.Options, logger *slog.Logger) (*shard.Coordinator, error) {
	var addrs []string
	for _, a := range strings.Split(spec, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		return nil, errors.New("-shards lists no addresses")
	}
	waitCtx, cancel := context.WithTimeout(ctx, wait)
	defer cancel()
	backends := make([]shard.Backend, len(addrs))
	for i, addr := range addrs {
		if err := shard.WaitReady(waitCtx, addr, nil); err != nil {
			return nil, err
		}
		b, err := shard.NewHTTPBackend(addr, nil)
		if err != nil {
			return nil, err
		}
		backends[i] = b
		logger.Info("shard ready", "shard", i, "addr", addr)
	}
	return shard.NewCoordinator(ctx, backends, copts)
}

// closeEngine closes the session if it ever attached, logging (not
// dying on) close errors — at this point the process is exiting and
// the only useful action is to report.
func closeEngine(srv *server.Server, logger *slog.Logger) {
	sess := srv.Session()
	if sess == nil {
		return
	}
	closer, ok := sess.(interface{ Close() error })
	if !ok {
		return
	}
	if err := closer.Close(); err != nil && !errors.Is(err, context.Canceled) {
		logger.Error("session close", "err", err)
	}
}
