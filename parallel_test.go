package blogclusters

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

// setsFingerprint serializes per-interval cluster sets for exact
// comparison across worker counts.
func setsFingerprint(sets [][]Cluster) string {
	var b strings.Builder
	for i, cs := range sets {
		fmt.Fprintf(&b, "t%d n%d\n", i, len(cs))
		for _, c := range cs {
			fmt.Fprintf(&b, " %d@%d %v\n", c.ID, c.Interval, c.Keywords)
		}
	}
	return b.String()
}

// graphFingerprint serializes a cluster graph for exact comparison.
func graphFingerprint(g *ClusterGraph) string {
	var b strings.Builder
	fmt.Fprintf(&b, "m=%d gap=%d nodes=%d edges=%d max=%b\n",
		g.NumIntervals(), g.Gap(), g.NumNodes(), g.NumEdges(), g.MaxWeight())
	for id := int64(0); id < int64(g.NumNodes()); id++ {
		fmt.Fprintf(&b, "n%d t%d %v\n", id, g.Interval(id), g.Cluster(id).Keywords)
		for _, h := range g.Children(id) {
			fmt.Fprintf(&b, " c%d w%b l%d\n", h.Peer, h.Weight, h.Length)
		}
		for _, h := range g.Parents(id) {
			fmt.Fprintf(&b, " p%d w%b l%d\n", h.Peer, h.Weight, h.Length)
		}
	}
	return b.String()
}

// TestSection4ParallelEquivalence runs the whole Section 4 pipeline —
// AllIntervalClusters then BuildClusterGraph on both the quadratic and
// simjoin paths, with a gap — at Parallelism 1, 2 and 8, and asserts
// each stage's output is identical to the sequential baseline's.
func TestSection4ParallelEquivalence(t *testing.T) {
	c := endToEndCorpus(t)

	baseSets, err := allIntervalClustersCtx(context.Background(), c, ClusterOptions{Parallelism: 1})
	if err != nil {
		t.Fatalf("AllIntervalClusters sequential: %v", err)
	}
	wantSets := setsFingerprint(baseSets)
	total := 0
	for _, cs := range baseSets {
		total += len(cs)
	}
	if total == 0 {
		t.Fatal("no clusters; corpus too sparse to be a real test")
	}

	graphVariants := []struct {
		name string
		opts GraphOptions
	}{
		{"quadratic_gap0", GraphOptions{Gap: 0, Theta: 0.1}},
		{"quadratic_gap2", GraphOptions{Gap: 2, Theta: 0.1}},
		{"simjoin_gap2", GraphOptions{Gap: 2, Theta: 0.1, UseSimJoin: true}},
	}
	wantGraphs := make([]string, len(graphVariants))
	for vi, v := range graphVariants {
		opts := v.opts
		opts.Parallelism = 1
		g, err := buildClusterGraphCtx(context.Background(), baseSets, opts)
		if err != nil {
			t.Fatalf("BuildClusterGraph %s sequential: %v", v.name, err)
		}
		if g.NumEdges() == 0 {
			t.Fatalf("BuildClusterGraph %s: no edges; workload too sparse to be a real test", v.name)
		}
		wantGraphs[vi] = graphFingerprint(g)
	}

	for _, par := range []int{2, 8} {
		sets, err := allIntervalClustersCtx(context.Background(), c, ClusterOptions{Parallelism: par})
		if err != nil {
			t.Fatalf("AllIntervalClusters parallelism %d: %v", par, err)
		}
		if got := setsFingerprint(sets); got != wantSets {
			t.Fatalf("AllIntervalClusters parallelism %d: cluster sets differ from sequential", par)
		}
		for vi, v := range graphVariants {
			opts := v.opts
			opts.Parallelism = par
			g, err := buildClusterGraphCtx(context.Background(), sets, opts)
			if err != nil {
				t.Fatalf("BuildClusterGraph %s parallelism %d: %v", v.name, par, err)
			}
			if got := graphFingerprint(g); got != wantGraphs[vi] {
				t.Fatalf("BuildClusterGraph %s parallelism %d: graph differs from sequential", v.name, par)
			}
		}
	}
}

// TestAllIntervalClustersBudgetSplit: a tiny memory budget split across
// interval workers forces the spill path inside concurrent interval
// builds and must still reproduce the sequential output.
func TestAllIntervalClustersBudgetSplit(t *testing.T) {
	c := endToEndCorpus(t)
	base, err := allIntervalClustersCtx(context.Background(), c, ClusterOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := allIntervalClustersCtx(context.Background(), c, ClusterOptions{Parallelism: 4, MemBudget: 64 << 10})
	if err != nil {
		t.Fatalf("AllIntervalClusters with split budget: %v", err)
	}
	if setsFingerprint(got) != setsFingerprint(base) {
		t.Fatal("split-budget parallel cluster sets differ from sequential")
	}
}
