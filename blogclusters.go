// Package blogclusters is a from-scratch Go reproduction of
// "Seeking Stable Clusters in the Blogosphere" (Bansal, Chiang, Koudas,
// Tompa; VLDB 2007).
//
// The library turns a temporally ordered text stream (blog posts
// bucketed into intervals) into:
//
//  1. per-interval keyword clusters — keyword co-occurrence graphs are
//     built with a single pass plus external-memory sort, pruned with a
//     χ² independence test and the correlation coefficient ρ, and
//     decomposed into biconnected components (Section 3 of the paper);
//  2. stable clusters — top-k highest-weight paths of a chosen temporal
//     length through the cluster graph, via BFS, DFS or threshold-
//     algorithm solvers, plus normalized (stability-ranked) and
//     streaming variants (Section 4).
//
// The package is a facade over the internal packages; everything needed
// for end-to-end use is re-exported here. See DESIGN.md for the paper →
// module map and EXPERIMENTS.md for the reproduction of the paper's
// evaluation.
//
// The entry point is the Engine (engine.go): a session object that
// loads the corpus once and memoizes every stage artifact across
// queries, with context cancellation end to end. Stable-cluster
// queries go through Engine.Solve (or the StableClusters wrappers),
// which validates a QuerySpec once, lets the cost-based planner pick
// the solver for "auto" queries, and runs the solvers with the
// session's parallelism. A handful of stateless helpers (per-interval
// clustering, cluster-set serialization, corpus generation) remain as
// free functions.
package blogclusters

import (
	"context"
	"fmt"
	"io"

	"repro/internal/bicc"
	"repro/internal/burst"
	"repro/internal/cluster"
	"repro/internal/clustergraph"
	"repro/internal/cooccur"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/diskstore"
	"repro/internal/faultfs"
	"repro/internal/index"
	"repro/internal/plan"
	"repro/internal/stats"
	"repro/internal/text"
	"repro/internal/topk"
)

// Re-exported building blocks. Downstream users program against these
// names; the internal packages stay private.
type (
	// Document is one blog post as a bag of analyzed keywords.
	Document = corpus.Document
	// Interval is one temporal bucket of documents.
	Interval = corpus.Interval
	// Collection is a temporally ordered sequence of intervals.
	Collection = corpus.Collection
	// Cluster is a set of correlated keywords in one interval.
	Cluster = cluster.Cluster
	// ClusterGraph is the graph whose nodes are per-interval clusters.
	ClusterGraph = clustergraph.Graph
	// Path is a weighted path of cluster nodes (a stable cluster).
	Path = topk.Path
	// Result carries the top-k paths plus work counters.
	Result = core.Result
	// Analyzer tokenizes, stems and stop-word-filters raw text.
	Analyzer = text.Analyzer
	// KeywordGraph is the per-interval keyword co-occurrence graph.
	KeywordGraph = cooccur.Graph
	// Stream is the online stable-cluster maintainer.
	Stream = core.Stream
	// StreamOptions configures a Stream.
	StreamOptions = core.StreamOptions
	// QuerySpec is the normalized description of a stable-cluster query
	// (variant, algorithm, k, lengths, diversity mode) shared by
	// Engine.Solve, the HTTP layer's parameter parsing and the query
	// planner's cache keys. The zero value plus K is a valid top-k
	// query; Algorithm "" or "auto" lets the planner choose.
	QuerySpec = plan.QuerySpec
)

// NewAnalyzer returns the paper's text pipeline: stemming on, default
// English stop words, bare numbers dropped.
func NewAnalyzer() *Analyzer { return text.NewAnalyzer() }

// ReadJSONL loads a collection from a JSONL stream of documents
// ({"id","interval","keywords"} per line).
func ReadJSONL(r io.Reader) (*Collection, error) { return corpus.ReadJSONL(r) }

// FullPaths requests paths spanning all intervals (l = m−1).
const FullPaths = core.FullPaths

// ClusterOptions configures per-interval cluster generation (Section 3).
type ClusterOptions struct {
	// Chi2Critical is the χ² pruning threshold; default 3.84 (95%
	// confidence, the paper's setting).
	Chi2Critical float64
	// RhoThreshold prunes edges with correlation coefficient ρ at or
	// below it; default 0.2 (the paper's setting).
	RhoThreshold float64
	// MinClusterSize drops clusters with fewer keywords; default 2.
	MinClusterSize int
	// SortMemoryBudget bounds the byte size of each sorted run spilled
	// to the external sorter; 0 spills runs whole.
	SortMemoryBudget int
	// MinPairCount drops keyword pairs seen in fewer documents before
	// statistics run; 0 keeps everything.
	MinPairCount int64
	// Parallelism is the worker count for the sharded keyword-graph
	// pipeline (counting, merge, statistics, pruning) and, in
	// AllIntervalClusters, for the interval-level worker pool that runs
	// whole interval builds concurrently. 0 means GOMAXPROCS; 1 selects
	// the fully sequential path.
	Parallelism int
	// MemBudget bounds the resident bytes of the pair-counting hash
	// tables across shards; shards over their share spill sorted runs
	// to disk. AllIntervalClusters splits the budget across concurrent
	// interval builds so total residency stays bounded regardless of
	// how many intervals are in flight. 0 means the 256 MiB default.
	MemBudget int
}

func (o ClusterOptions) withDefaults() ClusterOptions {
	if o.Chi2Critical == 0 {
		o.Chi2Critical = stats.ChiSquared95
	}
	if o.RhoThreshold == 0 {
		o.RhoThreshold = stats.DefaultRhoThreshold
	}
	if o.MinClusterSize == 0 {
		o.MinClusterSize = 2
	}
	return o
}

// IntervalClusters runs the Section 3 pipeline for one interval of the
// collection: keyword graph → χ²/ρ pruning → biconnected components →
// keyword clusters. Cluster IDs are local to the call (0,1,2…);
// BuildClusterGraph assigns graph-wide ids.
//
// For repeated queries over one corpus prefer an Engine, which
// memoizes the per-interval cluster sets (Engine.ClustersAt).
func IntervalClusters(c *Collection, interval int, opts ClusterOptions) ([]Cluster, error) {
	return intervalClustersCtx(context.Background(), c, interval, opts)
}

func intervalClustersCtx(ctx context.Context, c *Collection, interval int, opts ClusterOptions) ([]Cluster, error) {
	opts = opts.withDefaults()
	kg, err := cooccur.BuildCtx(ctx, c, interval, interval, cooccur.BuildOptions{
		SortMemoryBudget: opts.SortMemoryBudget,
		MinPairCount:     opts.MinPairCount,
		Parallelism:      opts.Parallelism,
		MemBudget:        opts.MemBudget,
	})
	if err != nil {
		return nil, fmt.Errorf("blogclusters: interval %d keyword graph: %w", interval, err)
	}
	kg.AnnotateStats()
	pruned := kg.Prune(opts.Chi2Critical, opts.RhoThreshold)

	bg := bicc.NewGraph(pruned.NumVertices())
	for _, e := range pruned.Edges {
		bg.AddEdge(e.U, e.V)
	}
	dec := bicc.Decompose(bg)
	var out []Cluster
	for _, comp := range dec.Clusters(opts.MinClusterSize) {
		kws := make([]string, len(comp))
		for i, v := range comp {
			kws[i] = pruned.Keywords[v]
		}
		out = append(out, cluster.New(int64(len(out)), interval, kws))
	}
	return out, nil
}

// WriteClusterSets persists per-interval cluster sets as JSONL so the
// cluster-generation and stable-cluster stages can run separately.
func WriteClusterSets(w io.Writer, sets [][]Cluster) error {
	return cluster.WriteSetsJSONL(w, sets)
}

// ReadClusterSets loads cluster sets written by WriteClusterSets.
func ReadClusterSets(r io.Reader) ([][]Cluster, error) {
	return cluster.ReadSetsJSONL(r)
}

// GraphOptions configures cluster-graph construction (Section 4.1).
type GraphOptions struct {
	// Gap is g, the number of intervals a story may skip; default 0.
	Gap int
	// Theta is the minimum affinity for an edge; default 0.1 (the
	// paper's θ).
	Theta float64
	// Affinity names the overlap measure: "jaccard" (default),
	// "intersection" or "overlap".
	Affinity string
	// UseSimJoin computes Jaccard edges with the prefix-filter
	// similarity join instead of the quadratic pair loop. The join's
	// token vocabulary is interned once for the whole run.
	UseSimJoin bool
	// Parallelism is the edge-generation worker count: work is sharded
	// by (interval, gap-offset) pair, with leftover workers
	// partitioning probes inside each similarity join. 0 means
	// GOMAXPROCS; 1 selects the sequential path. The graph is identical
	// at any worker count.
	Parallelism int
}

// resolveAffinity maps GraphOptions.Affinity to the affinity function
// plus the normalization flag (intersection weights exceed 1).
func resolveAffinity(opts GraphOptions) (cluster.AffinityFunc, bool, error) {
	if opts.Affinity == "" || opts.Affinity == "jaccard" {
		return nil, false, nil
	}
	f, err := cluster.ParseAffinity(opts.Affinity)
	if err != nil {
		return nil, false, err
	}
	return f, true, nil
}

// NewStream starts an online stable-cluster maintainer (Section 4.6):
// push each interval's clusters as they arrive and read the running
// top-k.
func NewStream(opts StreamOptions) (*Stream, error) { return core.NewStream(opts) }

// DescribePath renders a stable-cluster path with its keyword clusters,
// for reports and examples.
func DescribePath(g *ClusterGraph, p Path) string {
	s := fmt.Sprintf("weight %.3f, length %d:", p.Weight, p.Length)
	for _, id := range p.Nodes {
		c := g.Cluster(id)
		s += fmt.Sprintf("\n  t%d %v", g.Interval(id), c.Keywords)
	}
	return s
}

// IndexReader is the backend-neutral keyword-index interface: the
// in-memory index and the disk-backed segment layout answer the same
// primitives through it.
type IndexReader = index.Reader

// IndexStore is the live multi-segment keyword index behind an Engine:
// a base segment built at Open plus one small delta segment per pushed
// interval, folded back into the base by background compaction. It
// implements IndexReader (queries route to the segment covering the
// interval) and replaces the former immutable-corpus helpers
// (BuildIndex, OpenIndexReader) — a segment set that can grow is the
// only index surface now.
type IndexStore = index.Store

// IndexOptions selects and configures the index backend.
type IndexOptions struct {
	// Backend is "mem" (default: everything resident) or "disk" (the
	// EMBANKS-style segment file: resident dictionaries, postings on
	// disk behind an LRU block cache).
	Backend string
	// Path is where the disk backend's segment file lives. Empty means
	// a private temporary file, removed when the reader is closed.
	Path string
	// MemBudget bounds the disk backend's block-cache bytes (same
	// convention as ClusterOptions.MemBudget); 0 means the default.
	MemBudget int
	// SortMemoryBudget bounds the external sorter used while building
	// the disk segment; 0 means the extsort default.
	SortMemoryBudget int
	// FS is the filesystem beneath the disk backend's segment build and
	// reads. Nil means the real OS; tests substitute a faultfs.Injector
	// to exercise the retry and cleanup paths end to end.
	FS faultfs.FS
	// Retry bounds how the disk backend retries transient read faults
	// (EIO, short reads). The zero value uses the diskstore defaults.
	Retry diskstore.RetryPolicy
	// CompactAfter is the store's compaction threshold: once more than
	// CompactAfter delta segments accumulate from pushes, the Engine
	// folds them into the base in the background. 0 means the default
	// (index.DefaultCompactAfter); negative disables compaction.
	CompactAfter int
}

// config translates the facade options into the index package's
// unified Config. lifetime bounds the opened segments' retry backoff
// for as long as the store lives (the Engine passes its session
// context).
func (o IndexOptions) config(lifetime context.Context) index.Config {
	return index.Config{
		SortMemoryBudget: o.SortMemoryBudget,
		MemBudget:        o.MemBudget,
		FS:               o.FS,
		Retry:            o.Retry,
		Ctx:              lifetime,
		CompactAfter:     o.CompactAfter,
	}
}

// OpenIndexStore indexes the collection with the selected backend and
// returns the live multi-segment store. Close it when done; the mem
// backend's Close is a no-op, the disk backend's closes every segment
// (and removes them when Path was empty and the store owns a private
// temporary directory).
//
// For repeated index queries — and for pushing new intervals — prefer
// an Engine with WithIndexOptions: it opens the store once, shares it
// across queries, grows it on Push and closes it with the session.
func OpenIndexStore(ctx context.Context, c *Collection, opts IndexOptions) (*IndexStore, error) {
	return openIndexStoreCtx(ctx, context.Background(), c, opts)
}

// openIndexStoreCtx builds and opens the selected backend. ctx bounds
// the build; lifetime bounds the opened store's retry backoff sleeps
// (the store usually outlives the query that built it).
func openIndexStoreCtx(ctx, lifetime context.Context, c *Collection, opts IndexOptions) (*index.Store, error) {
	return index.OpenStore(ctx, c, opts.Backend, opts.Path, opts.config(lifetime))
}

// KeywordBurst is one bursty stretch of intervals for a keyword.
type KeywordBurst = burst.Burst

// DetectBurstsIn finds the intervals in which keyword w bursts — the
// "information bursts" BlogScope surfaces (paper Section 1) — over any
// index backend: the keyword's
// document-frequency trajectory comes straight from the reader's
// resident term statistics (no posting I/O on the disk backend).
//
// Each call rebuilds the per-interval totals slice from the reader;
// Engine.Bursts computes it once per session and shares it.
func DetectBurstsIn(r IndexReader, w string) ([]KeywordBurst, error) {
	counts, err := r.TimeSeries(w)
	if err != nil {
		return nil, err
	}
	return kleinbergBursts(counts, intervalTotals(r))
}

// intervalTotals reads the per-interval document totals the burst
// detector divides by.
func intervalTotals(r IndexReader) []int64 {
	totals := make([]int64, r.NumIntervals())
	for i := range totals {
		totals[i] = int64(r.NumDocs(i))
	}
	return totals
}

// kleinbergBursts runs the default burst automaton over one keyword's
// trajectory.
func kleinbergBursts(counts, totals []int64) ([]KeywordBurst, error) {
	return burst.Kleinberg(counts, totals, burst.KleinbergOptions{})
}

// RefineQuery implements the introduction's query-refinement use case:
// "If a search query for a specific interval falls in a cluster, the
// rest of the keywords in that cluster are good candidates for query
// refinement." Given the interval's clusters and a query keyword, it
// returns the other keywords of the cluster containing the keyword
// (empty when the keyword is unclustered). The query is analyzed with
// the same stemmer as the corpus, so surface forms match.
func RefineQuery(clusters []Cluster, query string) []string {
	kws := NewAnalyzer().Keywords(query)
	if len(kws) == 0 {
		return nil
	}
	kw := kws[0]
	for _, c := range clusters {
		if !c.Contains(kw) {
			continue
		}
		out := make([]string, 0, c.Size()-1)
		for _, w := range c.Keywords {
			if w != kw {
				out = append(out, w)
			}
		}
		return out
	}
	return nil
}

// DiversityMode re-exports the constrained kl-variant modes (paths with
// shared prefixes/suffixes discarded; see Section 4 of the paper).
type DiversityMode = core.DiversityMode

// Diversity modes for Engine.DiverseStableClusters.
const (
	DistinctEndpoints = core.DistinctEndpoints
	DistinctPrefix    = core.DistinctPrefix
	DistinctSuffix    = core.DistinctSuffix
	DisjointNodes     = core.DisjointNodes
)

// GenerateCorpus builds a synthetic blog corpus (the BlogScope-data
// substitution; see DESIGN.md).
func GenerateCorpus(cfg corpus.GeneratorConfig) (*Collection, error) { return corpus.Generate(cfg) }

// NewsWeekCorpus returns the preset configuration mirroring the
// paper's qualitative week of Jan 6–12 2007.
func NewsWeekCorpus(seed int64, backgroundPosts int) corpus.GeneratorConfig {
	return corpus.NewsWeek(seed, backgroundPosts)
}

// CorpusEvent and CorpusPhase re-export the synthetic generator's event
// model so callers can script their own stories.
type (
	CorpusEvent  = corpus.Event
	CorpusPhase  = corpus.Phase
	CorpusConfig = corpus.GeneratorConfig
)
