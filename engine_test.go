package blogclusters

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// testCorpus returns a small seeded news week shared by the Engine
// tests.
func testCorpus(t *testing.T, posts int) *Collection {
	t.Helper()
	col, err := GenerateCorpus(NewsWeekCorpus(2007, posts))
	if err != nil {
		t.Fatalf("generate corpus: %v", err)
	}
	return col
}

// TestEngineEquivalence proves the Engine's query methods return
// byte-identical results to the underlying stateless stages on a seeded
// corpus (the acceptance criterion of the API redesign): same cluster
// sets, same solver outputs on the same graph, same index answers,
// same bursts, refinements and correlations.
func TestEngineEquivalence(t *testing.T) {
	col := testCorpus(t, 150)
	ctx := context.Background()

	copts := ClusterOptions{Parallelism: 2}
	gopts := GraphOptions{Gap: 1, Theta: 0.1}
	eng, err := Open(ctx, FromCollection(col),
		WithClusterOptions(copts), WithGraphOptions(gopts))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer eng.Close()

	// Stage artifacts.
	wantSets, err := allIntervalClustersCtx(ctx, col, copts)
	if err != nil {
		t.Fatalf("reference clusters: %v", err)
	}
	gotSets, err := eng.Clusters(ctx)
	if err != nil {
		t.Fatalf("engine clusters: %v", err)
	}
	if !reflect.DeepEqual(wantSets, gotSets) {
		t.Fatalf("cluster sets differ between Engine and the stateless build")
	}

	wantG, err := buildClusterGraphCtx(ctx, wantSets, gopts)
	if err != nil {
		t.Fatalf("reference graph: %v", err)
	}
	gotG, err := eng.Graph(ctx)
	if err != nil {
		t.Fatalf("engine graph: %v", err)
	}
	if wantG.NumNodes() != gotG.NumNodes() || wantG.NumEdges() != gotG.NumEdges() {
		t.Fatalf("graph shape differs: legacy %d/%d, engine %d/%d",
			wantG.NumNodes(), wantG.NumEdges(), gotG.NumNodes(), gotG.NumEdges())
	}

	// Solvers, across algorithms and problems.
	for _, alg := range []string{"bfs", "dfs", "brute"} {
		want, err := core.Solve(ctx, wantG, core.Request{Algorithm: alg, K: 4, L: 2})
		if err != nil {
			t.Fatalf("reference %s: %v", alg, err)
		}
		got, err := eng.StableClusters(ctx, alg, 4, 2)
		if err != nil {
			t.Fatalf("engine %s: %v", alg, err)
		}
		if !reflect.DeepEqual(want.Paths, got.Paths) {
			t.Fatalf("%s paths differ between Engine and core.Solve", alg)
		}
	}
	wantN, err := core.Solve(ctx, wantG, core.Request{Algorithm: "normalized", K: 4, LMin: 2})
	if err != nil {
		t.Fatalf("reference normalized: %v", err)
	}
	gotN, err := eng.NormalizedStableClusters(ctx, 4, 2)
	if err != nil {
		t.Fatalf("engine normalized: %v", err)
	}
	if !reflect.DeepEqual(wantN.Paths, gotN.Paths) {
		t.Fatalf("normalized paths differ")
	}
	wantD, err := core.DiverseKL(ctx, wantG, core.Request{K: 3, L: 2}, DistinctEndpoints, 0)
	if err != nil {
		t.Fatalf("reference diverse: %v", err)
	}
	gotD, err := eng.DiverseStableClusters(ctx, 3, 2, DistinctEndpoints)
	if err != nil {
		t.Fatalf("engine diverse: %v", err)
	}
	if !reflect.DeepEqual(wantD.Paths, gotD.Paths) {
		t.Fatalf("diverse paths differ")
	}
	if len(gotN.Paths) > 0 {
		want := DescribePath(wantG, wantN.Paths[0])
		got, err := eng.Describe(ctx, gotN.Paths[0])
		if err != nil {
			t.Fatalf("describe: %v", err)
		}
		if want != got {
			t.Fatalf("Describe differs:\nlegacy: %s\nengine: %s", want, got)
		}
	}

	// Index-backed queries.
	r, err := OpenIndexStore(ctx, col, IndexOptions{})
	if err != nil {
		t.Fatalf("legacy index: %v", err)
	}
	defer r.Close()
	a := NewAnalyzer()
	for _, raw := range []string{"somalia", "beckham", "stem cells"} {
		kw := a.Keywords(raw)[0]
		wantTS, err := r.TimeSeries(kw)
		if err != nil {
			t.Fatalf("legacy timeseries(%s): %v", kw, err)
		}
		gotTS, err := eng.TimeSeries(ctx, raw)
		if err != nil {
			t.Fatalf("engine timeseries(%s): %v", raw, err)
		}
		if !reflect.DeepEqual(wantTS, gotTS) {
			t.Fatalf("time series differ for %q", raw)
		}
		wantB, err := DetectBurstsIn(r, kw)
		if err != nil {
			t.Fatalf("legacy bursts(%s): %v", kw, err)
		}
		gotB, err := eng.Bursts(ctx, raw)
		if err != nil {
			t.Fatalf("engine bursts(%s): %v", raw, err)
		}
		if !reflect.DeepEqual(wantB, gotB) {
			t.Fatalf("bursts differ for %q", raw)
		}
		wantS, err := r.Search([]string{kw}, 2)
		if err != nil {
			t.Fatalf("legacy search(%s): %v", kw, err)
		}
		gotS, err := eng.Search(ctx, []string{raw}, 2)
		if err != nil {
			t.Fatalf("engine search(%s): %v", raw, err)
		}
		if !reflect.DeepEqual(wantS, gotS) {
			t.Fatalf("search results differ for %q", raw)
		}
		wantR := RefineQuery(wantSets[2], raw)
		gotR, err := eng.Refine(ctx, raw, 2)
		if err != nil {
			t.Fatalf("engine refine(%s): %v", raw, err)
		}
		if !reflect.DeepEqual(wantR, gotR) {
			t.Fatalf("refinements differ for %q: legacy %v, engine %v", raw, wantR, gotR)
		}
	}

	// Correlations against the direct keyword-graph path.
	kw := a.Keywords("somalia")[0]
	gotC, err := eng.Correlations(ctx, "somalia", 0, 5)
	if err != nil {
		t.Fatalf("engine correlations: %v", err)
	}
	if len(gotC) == 0 {
		t.Fatalf("no correlations for %q at t0", kw)
	}
	for _, c := range gotC {
		if c.Keyword == kw {
			t.Fatalf("correlations include the query keyword itself")
		}
	}
}

// TestEngineSingleFlight asserts the acceptance criterion that N
// goroutines querying one Engine build each stage artifact exactly
// once (run under -race by `make race`).
func TestEngineSingleFlight(t *testing.T) {
	col := testCorpus(t, 80)
	ctx := context.Background()
	eng, err := Open(ctx, FromCollection(col),
		WithGraphOptions(GraphOptions{Gap: 0, Theta: 0.1}))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer eng.Close()

	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	results := make([]*Result, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := eng.Clusters(ctx); err != nil {
				errs[i] = err
				return
			}
			if _, err := eng.Index(ctx); err != nil {
				errs[i] = err
				return
			}
			if _, err := eng.Bursts(ctx, "somalia"); err != nil {
				errs[i] = err
				return
			}
			res, err := eng.StableClusters(ctx, "bfs", 3, FullPaths)
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}
	for i := 1; i < n; i++ {
		if !reflect.DeepEqual(results[0].Paths, results[i].Paths) {
			t.Fatalf("goroutine %d saw different paths", i)
		}
	}
	st := eng.Stats()
	for _, stage := range []string{"clusters", "index", "graph", "totals"} {
		if got := st.Stages[stage].Builds; got != 1 {
			t.Errorf("stage %q built %d times, want exactly 1", stage, got)
		}
	}
}

// TestEngineCancellation asserts that a canceled context aborts a
// stage build mid-flight promptly and leaks no goroutines: the
// goroutine count returns to (near) its pre-build level.
func TestEngineCancellation(t *testing.T) {
	col := testCorpus(t, 1200)
	before := runtime.NumGoroutine()

	eng, err := Open(context.Background(), FromCollection(col),
		WithClusterOptions(ClusterOptions{Parallelism: 4}))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer eng.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := eng.Clusters(ctx)
		done <- err
	}()
	// Let the build get going, then cancel mid-flight.
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled build returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled build did not return within 10s")
	}

	// The canceled result must not be cached: a live context rebuilds.
	sets, err := eng.Clusters(context.Background())
	if err != nil {
		t.Fatalf("rebuild after cancellation: %v", err)
	}
	if len(sets) != len(col.Intervals) {
		t.Fatalf("rebuild returned %d interval sets, want %d", len(sets), len(col.Intervals))
	}

	// No goroutine leak: worker pools drain after cancellation. Allow
	// brief settling plus slack for runtime background goroutines.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestEngineClose asserts Close semantics: idempotent, cancels the
// session, releases the disk index backend's temp segment, and
// subsequent queries fail with ErrEngineClosed.
func TestEngineClose(t *testing.T) {
	t.Setenv("TMPDIR", t.TempDir())
	col := testCorpus(t, 60)
	eng, err := Open(context.Background(), FromCollection(col),
		WithIndexOptions(IndexOptions{Backend: "disk"}))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := eng.Clusters(context.Background()); err != nil {
		t.Fatalf("clusters: %v", err)
	}
	if _, err := eng.TimeSeries(context.Background(), "somalia"); err != nil {
		t.Fatalf("timeseries: %v", err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := eng.Clusters(context.Background()); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("query after close returned %v, want ErrEngineClosed", err)
	}
	// The session owned the private disk segment; Close removed it.
	matches, err := filepath.Glob(filepath.Join(os.TempDir(), "blogclusters-idx-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Fatalf("closed session left temp segments behind: %v", matches)
	}
}

// TestEngineClustersAt asserts the single-interval path: one day's
// query builds only that interval (no full-corpus "clusters" build),
// matches the full build byte for byte, and later full builds reuse
// nothing stale.
func TestEngineClustersAt(t *testing.T) {
	col := testCorpus(t, 80)
	ctx := context.Background()
	eng, err := Open(ctx, FromCollection(col))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer eng.Close()

	day2, err := eng.ClustersAt(ctx, 2)
	if err != nil {
		t.Fatalf("clusters at 2: %v", err)
	}
	st := eng.Stats()
	if st.Stages["clusters"].Builds != 0 {
		t.Fatalf("single-interval query triggered %d full builds", st.Stages["clusters"].Builds)
	}
	if st.Stages["interval-clusters"].Builds != 1 {
		t.Fatalf("interval build count = %d, want 1", st.Stages["interval-clusters"].Builds)
	}
	// Memoized: a second ask does not rebuild.
	if _, err := eng.ClustersAt(ctx, 2); err != nil {
		t.Fatal(err)
	}
	if got := eng.Stats().Stages["interval-clusters"].Builds; got != 1 {
		t.Fatalf("repeat interval query rebuilt (%d builds)", got)
	}

	sets, err := eng.Clusters(ctx)
	if err != nil {
		t.Fatalf("full clusters: %v", err)
	}
	if !reflect.DeepEqual(sets[2], day2) {
		t.Fatal("per-interval build differs from the full build")
	}
	if _, err := eng.ClustersAt(ctx, len(col.Intervals)); err == nil {
		t.Fatal("out-of-range interval accepted")
	}
}

// TestEngineClusterSetsSource covers the Section 4 entry point: graph
// and path queries work, corpus-backed ones return ErrNoCorpus.
func TestEngineClusterSetsSource(t *testing.T) {
	col := testCorpus(t, 80)
	ctx := context.Background()
	sets, err := allIntervalClustersCtx(ctx, col, ClusterOptions{})
	if err != nil {
		t.Fatalf("clusters: %v", err)
	}
	eng, err := Open(ctx, FromClusterSets(sets),
		WithGraphOptions(GraphOptions{Gap: 0, Theta: 0.1}))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer eng.Close()
	if eng.Collection() != nil {
		t.Fatal("cluster-set engine should have no collection")
	}
	res, err := eng.StableClusters(ctx, "bfs", 3, FullPaths)
	if err != nil {
		t.Fatalf("stable clusters: %v", err)
	}
	if len(res.Paths) == 0 {
		t.Fatal("no stable clusters from cluster-set source")
	}
	if _, err := eng.TimeSeries(ctx, "somalia"); !errors.Is(err, ErrNoCorpus) {
		t.Fatalf("TimeSeries returned %v, want ErrNoCorpus", err)
	}
	if _, err := eng.Bursts(ctx, "somalia"); !errors.Is(err, ErrNoCorpus) {
		t.Fatalf("Bursts returned %v, want ErrNoCorpus", err)
	}
	if _, err := eng.Correlations(ctx, "somalia", 0, 3); !errors.Is(err, ErrNoCorpus) {
		t.Fatalf("Correlations returned %v, want ErrNoCorpus", err)
	}
}

// TestEngineProgress asserts the progress hook sees start/finish
// events for every built stage, with non-negative durations.
func TestEngineProgress(t *testing.T) {
	col := testCorpus(t, 60)
	var mu sync.Mutex
	events := map[string][]StageEvent{}
	eng, err := Open(context.Background(), FromCollection(col),
		WithProgress(func(ev StageEvent) {
			mu.Lock()
			events[ev.Stage] = append(events[ev.Stage], ev)
			mu.Unlock()
		}))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer eng.Close()
	if _, err := eng.Graph(context.Background()); err != nil {
		t.Fatalf("graph: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, stage := range []string{"corpus", "clusters", "graph"} {
		evs := events[stage]
		if len(evs) != 2 || evs[0].Done || !evs[1].Done {
			t.Fatalf("stage %q events = %+v, want start+finish", stage, evs)
		}
		if evs[1].Err != nil {
			t.Fatalf("stage %q finished with error %v", stage, evs[1].Err)
		}
	}
}

// TestEngineStatsJSON pins the EngineStats wire format: the serving
// layer's /debug/stats (and anything scraping it) parses these field
// names, so a rename here is a breaking API change and must fail this
// test first.
func TestEngineStatsJSON(t *testing.T) {
	col := testCorpus(t, 60)
	ctx := context.Background()
	eng, err := Open(ctx, FromCollection(col))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	// Materialize the index so the stages map is non-empty and IndexIO
	// has been through its lookup path.
	if _, err := eng.TimeSeries(ctx, "somalia"); err != nil {
		t.Fatal(err)
	}

	raw, err := json.Marshal(eng.Stats())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	wantTop := []string{"generation", "intervals", "queries", "pushes", "stages", "index_io", "index_segments", "index_compactions", "index_cache", "planner"}
	if len(m) != len(wantTop) {
		t.Fatalf("EngineStats JSON has %d fields, want %d: %s", len(m), len(wantTop), raw)
	}
	for _, k := range wantTop {
		if _, ok := m[k]; !ok {
			t.Fatalf("EngineStats JSON missing %q: %s", k, raw)
		}
	}

	var stages map[string]map[string]json.RawMessage
	if err := json.Unmarshal(m["stages"], &stages); err != nil {
		t.Fatal(err)
	}
	if _, ok := stages["index"]; !ok {
		t.Fatalf("stages missing %q after TimeSeries: %s", "index", m["stages"])
	}
	for name, st := range stages {
		for _, k := range []string{"builds", "total_ns"} {
			if _, ok := st[k]; !ok {
				t.Fatalf("stage %q missing field %q: %s", name, k, m["stages"])
			}
		}
		if len(st) != 2 {
			t.Fatalf("stage %q has %d fields, want 2: %s", name, len(st), m["stages"])
		}
	}

	var io map[string]int64
	if err := json.Unmarshal(m["index_io"], &io); err != nil {
		t.Fatal(err)
	}
	wantIO := []string{"random_reads", "sequential_reads", "writes", "bytes_read", "bytes_written", "retried_reads", "corrupt_reads"}
	if len(io) != len(wantIO) {
		t.Fatalf("index_io has %d fields, want %d: %s", len(io), len(wantIO), m["index_io"])
	}
	for _, k := range wantIO {
		if _, ok := io[k]; !ok {
			t.Fatalf("index_io missing %q: %s", k, m["index_io"])
		}
	}

	// Round-trip: the same names unmarshal back into the struct.
	var back EngineStats
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Queries != eng.Stats().Queries || back.Stages["index"].Builds != 1 {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
}

// TestEnginePlanner checks the planner's Engine integration: auto
// queries are planned (decisions and cache activity show up in Stats),
// forced-algorithm queries bypass the planner, and WithPlanMode("off")
// disables it entirely while auto queries still answer.
func TestEnginePlanner(t *testing.T) {
	col := testCorpus(t, 150)
	ctx := context.Background()

	eng, err := Open(ctx, FromCollection(col),
		WithGraphOptions(GraphOptions{Gap: 1, Theta: 0.1}))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer eng.Close()

	// Forced algorithm: no planner involvement.
	if _, err := eng.StableClusters(ctx, "bfs", 4, 2); err != nil {
		t.Fatalf("forced solve: %v", err)
	}
	if st := eng.Stats().Planner; st.Decisions != 0 {
		t.Fatalf("forced solve planned: %+v", st)
	}

	// Auto queries: every solve is one planner decision, and repeating
	// the same query eventually hits the plan cache (once each
	// candidate has been explored and the exploit decision is cached).
	want, err := eng.StableClusters(ctx, "auto", 4, 2)
	if err != nil {
		t.Fatalf("auto solve: %v", err)
	}
	const rounds = 6
	for i := 1; i < rounds; i++ {
		got, err := eng.StableClusters(ctx, "auto", 4, 2)
		if err != nil {
			t.Fatalf("auto solve %d: %v", i, err)
		}
		if !reflect.DeepEqual(want.Paths, got.Paths) {
			t.Fatalf("auto solve %d returned different paths", i)
		}
	}
	st := eng.Stats().Planner
	if st.Decisions != rounds {
		t.Fatalf("Decisions = %d, want %d", st.Decisions, rounds)
	}
	if st.Observations != rounds {
		t.Fatalf("Observations = %d, want %d", st.Observations, rounds)
	}
	if st.CacheHits == 0 {
		t.Fatalf("no plan-cache hits after %d identical auto queries: %+v", rounds, st)
	}
	var picks int64
	for _, n := range st.ByAlgorithm {
		picks += n
	}
	if picks != st.Decisions {
		t.Fatalf("ByAlgorithm totals %d, want %d", picks, st.Decisions)
	}

	// Plan mode off: auto still answers (registry default), planner
	// stays idle, and the result matches the planned engine's.
	off, err := Open(ctx, FromCollection(col),
		WithGraphOptions(GraphOptions{Gap: 1, Theta: 0.1}), WithPlanMode("off"))
	if err != nil {
		t.Fatalf("open planless: %v", err)
	}
	defer off.Close()
	got, err := off.StableClusters(ctx, "auto", 4, 2)
	if err != nil {
		t.Fatalf("planless auto solve: %v", err)
	}
	if !reflect.DeepEqual(want.Paths, got.Paths) {
		t.Fatalf("planless auto solve returned different paths")
	}
	if st := off.Stats().Planner; st.Decisions != 0 || st.Observations != 0 {
		t.Fatalf("planless engine used planner: %+v", st)
	}
}
