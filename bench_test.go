package blogclusters

// One benchmark per table and figure of the paper's evaluation, plus
// ablation benches for the design choices called out in DESIGN.md.
// Parameters are scaled to benchmark-friendly sizes; the full-scale
// sweeps live in cmd/experiments (go run ./cmd/experiments -scale 1).

import (
	"context"
	binenc "encoding/binary"
	"fmt"
	"path/filepath"
	"runtime"
	"strconv"
	"testing"

	"repro/internal/bicc"
	"repro/internal/cluster"
	"repro/internal/clustergraph"
	"repro/internal/cooccur"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/extsort"
	"repro/internal/index"
	"repro/internal/simjoin"
	"repro/internal/stats"
	"repro/internal/synth"
)

func benchCorpus(b *testing.B, posts int) *corpus.Collection {
	b.Helper()
	col, err := corpus.Generate(corpus.GeneratorConfig{
		Seed: 1, NumIntervals: 2, BackgroundPosts: posts,
		BackgroundVocab: 2000, WordsPerPost: 10,
		Events: []corpus.Event{{Name: "e", Phases: []corpus.Phase{{
			Keywords: []string{"alpha", "beta", "gamma"}, Intervals: []int{0, 1}, Posts: posts / 20,
		}}}},
	})
	if err != nil {
		b.Fatal(err)
	}
	return col
}

func benchGraph(b *testing.B, m, n, d, g int) *clustergraph.Graph {
	b.Helper()
	cg, err := synth.Generate(synth.Config{Seed: 1, M: m, N: n, D: d, G: g})
	if err != nil {
		b.Fatal(err)
	}
	return cg
}

// benchSolve runs one unified-dispatch solve; the paper-figure benches
// pin Parallelism to 1 so their numbers stay comparable with the
// sequential history, and BenchmarkAblationParallelSolvers measures the
// worker fan-out explicitly.
func benchSolve(b *testing.B, g *clustergraph.Graph, req core.Request) {
	b.Helper()
	if _, err := core.Solve(context.Background(), g, req); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTable1KeywordGraph measures keyword-graph construction (the
// Section 3 single-pass + external-sort pipeline behind Table 1).
func BenchmarkTable1KeywordGraph(b *testing.B) {
	col := benchCorpus(b, 800)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := cooccur.Build(col, 0, 0, cooccur.BuildOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if g.NumEdges() == 0 {
			b.Fatal("empty graph")
		}
	}
}

// BenchmarkFig6ArtVsRho measures the χ²/ρ pruning plus the Art
// (biconnected components) run as the ρ threshold varies — Figure 6's
// curve.
func BenchmarkFig6ArtVsRho(b *testing.B) {
	col := benchCorpus(b, 800)
	g, err := cooccur.Build(col, 0, 0, cooccur.BuildOptions{})
	if err != nil {
		b.Fatal(err)
	}
	g.AnnotateStats()
	for _, rho := range []float64{0.2, 0.5, 0.8} {
		b.Run(fmt.Sprintf("rho%.1f", rho), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pruned := g.Prune(stats.ChiSquared95, rho)
				bg := bicc.NewGraph(pruned.NumVertices())
				for _, e := range pruned.Edges {
					bg.AddEdge(e.U, e.V)
				}
				bicc.Decompose(bg)
			}
		})
	}
}

// BenchmarkTable3BFSvsDFSvsTA compares the three solvers for top-5
// full paths (Table 3; n scaled down, m = 6).
func BenchmarkTable3BFSvsDFSvsTA(b *testing.B) {
	g := benchGraph(b, 6, 100, 5, 0)
	for _, algo := range []string{"bfs", "dfs", "ta"} {
		b.Run(algo, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				benchSolve(b, g, core.Request{Algorithm: algo, K: 5, L: core.FullPaths, Parallelism: 1})
			}
		})
	}
}

// BenchmarkFig7BFSGap sweeps the gap (Figure 7).
func BenchmarkFig7BFSGap(b *testing.B) {
	for _, gap := range []int{0, 1, 2} {
		g := benchGraph(b, 10, 200, 5, gap)
		b.Run(fmt.Sprintf("g%d", gap), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				benchSolve(b, g, core.Request{K: 5, L: core.FullPaths, Parallelism: 1})
			}
		})
	}
}

// BenchmarkFig8BFSDegree sweeps the out-degree (Figure 8).
func BenchmarkFig8BFSDegree(b *testing.B) {
	for _, d := range []int{3, 5, 7} {
		g := benchGraph(b, 10, 200, d, 2)
		b.Run(fmt.Sprintf("d%d", d), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				benchSolve(b, g, core.Request{K: 5, L: core.FullPaths, Parallelism: 1})
			}
		})
	}
}

// BenchmarkFig9BFSScale sweeps nodes per interval (Figure 9).
func BenchmarkFig9BFSScale(b *testing.B) {
	for _, n := range []int{500, 1000, 2000} {
		g := benchGraph(b, 25, n, 5, 1)
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				benchSolve(b, g, core.Request{K: 5, L: core.FullPaths, Parallelism: 1})
			}
		})
	}
}

// BenchmarkFig10BFSSubpaths sweeps the subpath length (Figure 10).
func BenchmarkFig10BFSSubpaths(b *testing.B) {
	g := benchGraph(b, 15, 300, 5, 2)
	for _, l := range []int{4, 8, 12} {
		b.Run(fmt.Sprintf("l%d", l), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				benchSolve(b, g, core.Request{K: 5, L: l, Parallelism: 1})
			}
		})
	}
}

// BenchmarkFig11DFS sweeps m for the DFS solver (Figure 11).
func BenchmarkFig11DFS(b *testing.B) {
	for _, m := range []int{3, 6, 9} {
		g := benchGraph(b, m, 100, 5, 1)
		b.Run(fmt.Sprintf("m%d", m), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				benchSolve(b, g, core.Request{Algorithm: "dfs", K: 5, L: core.FullPaths, Parallelism: 1})
			}
		})
	}
}

// BenchmarkFig12DFSGapDegree sweeps the gap at fixed degree for DFS
// (Figure 12).
func BenchmarkFig12DFSGapDegree(b *testing.B) {
	for _, gap := range []int{0, 1, 2} {
		g := benchGraph(b, 6, 100, 4, gap)
		b.Run(fmt.Sprintf("g%d", gap), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				benchSolve(b, g, core.Request{Algorithm: "dfs", K: 5, L: core.FullPaths, Parallelism: 1})
			}
		})
	}
}

// BenchmarkFig13DFSSubpaths sweeps the subpath length for DFS
// (Figure 13).
func BenchmarkFig13DFSSubpaths(b *testing.B) {
	g := benchGraph(b, 6, 80, 5, 1)
	for _, l := range []int{2, 3, 4} {
		b.Run(fmt.Sprintf("l%d", l), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				benchSolve(b, g, core.Request{Algorithm: "dfs", K: 5, L: l, Parallelism: 1})
			}
		})
	}
}

// BenchmarkFig14Normalized sweeps lmin for the normalized solver
// (Figure 14).
func BenchmarkFig14Normalized(b *testing.B) {
	g := benchGraph(b, 8, 80, 3, 0)
	for _, lmin := range []int{2, 3, 4} {
		b.Run(fmt.Sprintf("lmin%d", lmin), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				benchSolve(b, g, core.Request{Algorithm: "normalized", K: 5, LMin: lmin, Parallelism: 1})
			}
		})
	}
}

// BenchmarkKSensitivity sweeps k (the Section 5.2 sensitivity claim).
func BenchmarkKSensitivity(b *testing.B) {
	g := benchGraph(b, 9, 100, 5, 1)
	for _, k := range []int{1, 5, 25} {
		b.Run(fmt.Sprintf("k%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				benchSolve(b, g, core.Request{K: k, L: core.FullPaths, Parallelism: 1})
			}
		})
	}
}

// --- Ablations (DESIGN.md Section 4) ---

// BenchmarkAblationDFSChildOrder: children sorted by descending weight
// (the paper's heuristic) vs worst-first.
func BenchmarkAblationDFSChildOrder(b *testing.B) {
	g := benchGraph(b, 6, 100, 5, 0)
	for _, worst := range []bool{false, true} {
		name := "sorted"
		if worst {
			name = "worstFirst"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				benchSolve(b, g, core.Request{Algorithm: "dfs", K: 5, L: core.FullPaths, WorstFirstChildren: worst, Parallelism: 1})
			}
		})
	}
}

// BenchmarkAblationDFSPruning: CanPrune on vs off.
func BenchmarkAblationDFSPruning(b *testing.B) {
	g := benchGraph(b, 6, 100, 5, 0)
	for _, disabled := range []bool{false, true} {
		name := "pruning"
		if disabled {
			name = "noPruning"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				benchSolve(b, g, core.Request{Algorithm: "dfs", K: 5, L: core.FullPaths, DisablePruning: disabled, Parallelism: 1})
			}
		})
	}
}

// BenchmarkAblationTAHashTables: the startwts/endwts upper-bound
// optimization of Section 4.4 on vs off.
func BenchmarkAblationTAHashTables(b *testing.B) {
	g := benchGraph(b, 6, 100, 4, 0)
	for _, disabled := range []bool{false, true} {
		name := "bounds"
		if disabled {
			name = "noBounds"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				benchSolve(b, g, core.Request{Algorithm: "ta", K: 5, L: core.FullPaths, DisableBoundHashTables: disabled, Parallelism: 1})
			}
		})
	}
}

// BenchmarkAblationBFSFullPathFastPath: the single-heap optimization
// for l = m−1 on vs off.
func BenchmarkAblationBFSFullPathFastPath(b *testing.B) {
	g := benchGraph(b, 10, 300, 5, 1)
	for _, disabled := range []bool{false, true} {
		name := "fastPath"
		if disabled {
			name = "generic"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				benchSolve(b, g, core.Request{K: 5, L: core.FullPaths, DisableFullPathFastPath: disabled, Parallelism: 1})
			}
		})
	}
}

// BenchmarkAblationParallelSolvers: the interval-level worker fan-out
// of each solver (Parallelism 0 = GOMAXPROCS) vs the sequential
// reference path (Parallelism 1). All variants return byte-identical
// paths (see internal/core parallel equivalence tests); this measures
// what that interchangeability buys. The graph is the ablation shape
// scaled up so per-interval node counts dominate coordination costs.
func BenchmarkAblationParallelSolvers(b *testing.B) {
	graphs := map[string]*clustergraph.Graph{
		"bfs":        benchGraph(b, 10, 2000, 5, 1),
		"dfs":        benchGraph(b, 6, 400, 5, 1),
		"ta":         benchGraph(b, 6, 300, 5, 0),
		"normalized": benchGraph(b, 8, 300, 3, 0),
	}
	// The parallel arm pins an explicit worker count > 1 so the fan-out
	// machinery is always on the measured path (core treats 0 and 1 as
	// the sequential loop); on a single-core box this records the
	// coordination overhead rather than a speedup.
	parWorkers := runtime.GOMAXPROCS(0)
	if parWorkers < 2 {
		parWorkers = 2
	}
	for _, algo := range []string{"bfs", "dfs", "ta", "normalized"} {
		g := graphs[algo]
		for _, workers := range []int{1, parWorkers} {
			name := fmt.Sprintf("%s/seq", algo)
			if workers > 1 {
				name = fmt.Sprintf("%s/par", algo)
			}
			b.Run(name, func(b *testing.B) {
				req := core.Request{Algorithm: algo, K: 5, Parallelism: workers}
				if algo == "normalized" {
					req.LMin = 3
				} else {
					req.L = core.FullPaths
				}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					benchSolve(b, g, req)
				}
			})
		}
	}
}

// BenchmarkAblationPlannerOverhead: the steady-state cost of routing a
// query through the planner (warm plan cache) vs forcing the algorithm,
// measured over Engine.Solve on a memoized graph — the per-query planner
// tax the serving layer pays for auto queries.
func BenchmarkAblationPlannerOverhead(b *testing.B) {
	col, err := GenerateCorpus(NewsWeekCorpus(2007, 120))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	eng, err := Open(ctx, FromCollection(col), WithGraphOptions(GraphOptions{Gap: 1, Theta: 0.1}))
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	// Warm until the plan cache serves hits, so the timed loop measures
	// the steady state and never the exploration solves (the planner
	// tries each candidate algorithm once before caching the cheapest).
	for i := 0; i < 10 && eng.Stats().Planner.CacheHits == 0; i++ {
		if _, err := eng.Solve(ctx, QuerySpec{K: 5, L: 3}); err != nil {
			b.Fatal(err)
		}
	}
	if eng.Stats().Planner.CacheHits == 0 {
		b.Fatal("plan cache never warmed")
	}
	for _, v := range []struct {
		name string
		spec QuerySpec
	}{
		{"forced", QuerySpec{Algorithm: "bfs", K: 5, L: 3}},
		{"planned", QuerySpec{K: 5, L: 3}},
	} {
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Solve(ctx, v.spec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationParallelBuild: the sharded parallel keyword-graph
// pipeline (Parallelism 0 = GOMAXPROCS) vs the sequential ablation path
// (Parallelism 1), plus the budget-forced spill route, on the Table 1
// workload. The parallel and sequential variants produce identical
// graphs (see internal/cooccur equivalence tests); this measures the
// cost of that interchangeability.
func BenchmarkAblationParallelBuild(b *testing.B) {
	col := benchCorpus(b, 800)
	variants := []struct {
		name string
		opts cooccur.BuildOptions
	}{
		{"sequential", cooccur.BuildOptions{Parallelism: 1}},
		{"parallel", cooccur.BuildOptions{}},
		{"parallelSpill", cooccur.BuildOptions{MemBudget: 64 << 10}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g, err := cooccur.Build(col, 0, 0, v.opts)
				if err != nil {
					b.Fatal(err)
				}
				if g.NumEdges() == 0 {
					b.Fatal("empty graph")
				}
			}
		})
	}
}

// BenchmarkAblationSimJoin: prefix-filter similarity join vs the
// quadratic loop for cluster-graph edges.
func BenchmarkAblationSimJoin(b *testing.B) {
	var left, right []cluster.Cluster
	for i := 0; i < 400; i++ {
		left = append(left, cluster.New(int64(i), 0, kwSet(i, 6)))
		right = append(right, cluster.New(int64(i), 1, kwSet(i+200, 6)))
	}
	b.Run("prefixFilter", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := simjoin.Join(left, right, 0.3); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("nestedLoop", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := simjoin.JoinBrute(left, right, 0.3); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func kwSet(seed, n int) []string {
	kws := make([]string, 0, n)
	for i := 0; i < n; i++ {
		kws = append(kws, fmt.Sprintf("w%04d", (seed*31+i*7)%3000))
	}
	return kws
}

// benchClusterSets builds per-interval cluster sets with controlled
// cross-interval overlap for the Section 4 construction benchmarks.
func benchClusterSets(m, perInterval, kw int) [][]cluster.Cluster {
	sets := make([][]cluster.Cluster, m)
	for i := 0; i < m; i++ {
		cs := make([]cluster.Cluster, perInterval)
		for j := 0; j < perInterval; j++ {
			cs[j] = cluster.New(int64(j), i, kwSet(i*37+j, kw))
		}
		sets[i] = cs
	}
	return sets
}

// BenchmarkClusterGraph measures cluster-graph construction (Section
// 4.1): the quadratic pair loop vs the prefix-filter simjoin, each
// sequential (Parallelism 1, the ablation baseline) and sharded by
// (interval, gap-offset) pair. All variants build the identical graph.
func BenchmarkClusterGraph(b *testing.B) {
	sets := benchClusterSets(8, 200, 6)
	variants := []struct {
		name string
		opts clustergraph.FromClustersOptions
	}{
		{"quadSeq", clustergraph.FromClustersOptions{Gap: 1, Theta: 0.3, Parallelism: 1}},
		{"quadPar", clustergraph.FromClustersOptions{Gap: 1, Theta: 0.3}},
		{"simjoinSeq", clustergraph.FromClustersOptions{Gap: 1, Theta: 0.3, UseSimJoin: true, Parallelism: 1}},
		{"simjoinPar", clustergraph.FromClustersOptions{Gap: 1, Theta: 0.3, UseSimJoin: true}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g, err := clustergraph.FromClusters(sets, v.opts)
				if err != nil {
					b.Fatal(err)
				}
				if g.NumEdges() == 0 {
					b.Fatal("edgeless graph")
				}
			}
		})
	}
}

// BenchmarkSimJoin measures the similarity join itself: rebuilding the
// token vocabulary per call (the old Join behavior) vs interning it
// once and reusing records across calls, sequential and with
// partitioned probes.
func BenchmarkSimJoin(b *testing.B) {
	var left, right []cluster.Cluster
	for i := 0; i < 600; i++ {
		left = append(left, cluster.New(int64(i), 0, kwSet(i, 6)))
		right = append(right, cluster.New(int64(i), 1, kwSet(i+300, 6)))
	}
	b.Run("rebuildVocab", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := simjoin.Join(left, right, 0.3); err != nil {
				b.Fatal(err)
			}
		}
	})
	v := simjoin.NewVocab(left, right)
	lrec, err := v.Records(left)
	if err != nil {
		b.Fatal(err)
	}
	rrec, err := v.Records(right)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("reuseVocabSeq", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := v.JoinRecords(lrec, rrec, 0.3, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reuseVocabPar", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := v.JoinRecords(lrec, rrec, 0.3, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationParallelClusters: interval-level fan-out of
// AllIntervalClusters (Parallelism 0 = GOMAXPROCS) vs the sequential
// loop, including the split-budget spill route.
func BenchmarkAblationParallelClusters(b *testing.B) {
	col, err := GenerateCorpus(NewsWeekCorpus(2007, 120))
	if err != nil {
		b.Fatal(err)
	}
	variants := []struct {
		name string
		opts ClusterOptions
	}{
		{"sequential", ClusterOptions{Parallelism: 1}},
		{"parallel", ClusterOptions{}},
		{"parallelSplitBudget", ClusterOptions{MemBudget: 256 << 10}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sets, err := allIntervalClustersCtx(context.Background(), col, v.opts)
				if err != nil {
					b.Fatal(err)
				}
				if len(sets) != 7 {
					b.Fatalf("want 7 interval sets, got %d", len(sets))
				}
			}
		})
	}
}

// benchIndexCorpus is the corpus behind the index-backend benches: a
// few intervals, a mid-size vocabulary, enough postings that the disk
// layout spans many blocks.
func benchIndexCorpus(b *testing.B) *corpus.Collection {
	b.Helper()
	col, err := corpus.Generate(corpus.GeneratorConfig{
		Seed: 3, NumIntervals: 3, BackgroundPosts: 2500,
		BackgroundVocab: 1500, WordsPerPost: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	return col
}

// BenchmarkDiskIndexBuild measures building the keyword index: the
// resident map layout vs streaming the postings through extsort into
// the on-disk segment.
func BenchmarkDiskIndexBuild(b *testing.B) {
	col := benchIndexCorpus(b)
	b.Run("mem", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := index.New(col); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("disk", func(b *testing.B) {
		dir := b.TempDir()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			path := filepath.Join(dir, fmt.Sprintf("seg-%d", i%4))
			if err := index.BuildDisk(col, path, index.Config{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDiskIndexSearch measures two-keyword boolean search on both
// backends; the disk variants differ in block-cache budget (the warm
// path serves from the LRU, the cold path pays block reads).
func BenchmarkDiskIndexSearch(b *testing.B) {
	col := benchIndexCorpus(b)
	x, err := index.New(col)
	if err != nil {
		b.Fatal(err)
	}
	vocab := x.Vocabulary(0)
	if len(vocab) < 2 {
		b.Fatal("tiny vocabulary")
	}
	path := filepath.Join(b.TempDir(), "seg")
	if err := index.BuildDisk(col, path, index.Config{}); err != nil {
		b.Fatal(err)
	}
	b.Run("mem", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			x.Search([]string{vocab[i%len(vocab)], vocab[(i*7)%len(vocab)]}, i%3)
		}
	})
	for _, v := range []struct {
		name   string
		budget int
	}{
		{"diskWarm", 0},        // default 8 MiB cache: everything stays resident
		{"diskCold", 16 << 10}, // 16 KiB cache: most lookups hit disk
	} {
		b.Run(v.name, func(b *testing.B) {
			d, err := index.OpenDisk(path, index.Config{MemBudget: v.budget})
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := d.Search([]string{vocab[i%len(vocab)], vocab[(i*7)%len(vocab)]}, i%3); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkQualitativePipeline runs the full Section 5.3 pipeline end
// to end on a small news week.
func BenchmarkQualitativePipeline(b *testing.B) {
	col, err := GenerateCorpus(NewsWeekCorpus(2007, 120))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := context.Background()
		sets, err := allIntervalClustersCtx(ctx, col, ClusterOptions{})
		if err != nil {
			b.Fatal(err)
		}
		g, err := buildClusterGraphCtx(ctx, sets, GraphOptions{Gap: 2, Theta: 0.1})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.Solve(ctx, g, core.Request{K: 5, L: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtsortPostingRecords is the before/after line for the
// external sorter's record formats on index-shaped data: "text" is the
// original newline-terminated framing with the order-preserving hex
// tuple encoding BuildDisk used through PR 3; "binary" is the
// length-prefixed framing with big-endian fixed-width integers that
// BuildDisk uses now. Both force spills and a multi-run merge, so the
// measured delta is the full encode → spill → merge → decode path.
func BenchmarkExtsortPostingRecords(b *testing.B) {
	const nRecords = 20000
	terms := make([]string, 64)
	for i := range terms {
		terms[i] = fmt.Sprintf("keyword%02d", i)
	}
	run := func(b *testing.B, binary bool, encode func(interval int, term string, doc int64) string) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := extsort.NewWithOptions(extsort.Options{MemoryBudget: 64 << 10, Binary: binary})
			for r := 0; r < nRecords; r++ {
				rec := encode(r%7, terms[r%len(terms)], int64(r))
				if err := s.Add(rec); err != nil {
					b.Fatal(err)
				}
			}
			it, err := s.Sort()
			if err != nil {
				b.Fatal(err)
			}
			n := 0
			for {
				if _, ok := it.Next(); !ok {
					break
				}
				n++
			}
			if err := it.Err(); err != nil {
				b.Fatal(err)
			}
			it.Close()
			if n != nRecords {
				b.Fatalf("lost records: %d of %d", n, nRecords)
			}
		}
	}
	b.Run("text", func(b *testing.B) {
		run(b, false, func(interval int, term string, doc int64) string {
			return fmt.Sprintf("%08x\x00%s\x00%016x", uint32(interval), term, uint64(doc))
		})
	})
	b.Run("binary", func(b *testing.B) {
		var buf []byte
		run(b, true, func(interval int, term string, doc int64) string {
			buf = binenc.BigEndian.AppendUint32(buf[:0], uint32(interval))
			buf = append(buf, term...)
			buf = append(buf, 0)
			buf = binenc.BigEndian.AppendUint64(buf, uint64(doc))
			return string(buf)
		})
	})
}

// BenchmarkExtsortPreMergeCombine is the before/after line for
// aggregating pre-merges (Options.Combine) on pair-count-shaped data:
// many spilled runs that each re-emit the same hot keys, the workload
// cooccur's sharded counting produces under a tight memory budget.
// "plain" carries every duplicate to the consumer; "combine" collapses
// equal keys during the grouped pre-merge, shrinking every downstream
// merge pass.
func BenchmarkExtsortPreMergeCombine(b *testing.B) {
	const (
		nRuns  = 96
		nKeys  = 400
		fanIn  = 8
		keyLen = 16
	)
	runRecs := make([][]string, nRuns)
	for r := range runRecs {
		recs := make([]string, nKeys)
		for k := 0; k < nKeys; k++ {
			recs[k] = fmt.Sprintf("%0*x %d", keyLen, uint64(k), r+k+1)
		}
		runRecs[r] = recs
	}
	combine := func(acc, next string) (string, bool) {
		if len(acc) <= keyLen || len(next) <= keyLen || acc[:keyLen+1] != next[:keyLen+1] {
			return "", false
		}
		a, err := strconv.ParseInt(acc[keyLen+1:], 10, 64)
		if err != nil {
			return "", false
		}
		bb, err := strconv.ParseInt(next[keyLen+1:], 10, 64)
		if err != nil {
			return "", false
		}
		buf := make([]byte, 0, len(acc)+4)
		buf = append(buf, acc[:keyLen+1]...)
		buf = strconv.AppendInt(buf, a+bb, 10)
		return string(buf), true
	}
	for _, v := range []struct {
		name    string
		combine func(acc, next string) (string, bool)
	}{
		{"plain", nil},
		{"combine", combine},
	} {
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := extsort.NewWithOptions(extsort.Options{FanIn: fanIn, Combine: v.combine})
				for _, recs := range runRecs {
					if err := s.AddSortedRun(recs); err != nil {
						b.Fatal(err)
					}
				}
				it, err := s.Sort()
				if err != nil {
					b.Fatal(err)
				}
				n := 0
				for {
					if _, ok := it.Next(); !ok {
						break
					}
					n++
				}
				if err := it.Err(); err != nil {
					b.Fatal(err)
				}
				it.Close()
				if n == 0 || (v.combine == nil && n != nRuns*nKeys) {
					b.Fatalf("bad record count %d", n)
				}
			}
		})
	}
}

// benchPushCollection builds an m-interval corpus for the live-ingest
// benches, with a persistent event so every interval has postings for
// the probed keywords.
func benchPushCollection(b *testing.B, m, posts int) *corpus.Collection {
	b.Helper()
	intervals := make([]int, m)
	for i := range intervals {
		intervals[i] = i
	}
	col, err := corpus.Generate(corpus.GeneratorConfig{
		Seed: 7, NumIntervals: m, BackgroundPosts: posts,
		BackgroundVocab: 1500, WordsPerPost: 8,
		Events: []corpus.Event{{Name: "e", Phases: []corpus.Phase{{
			Keywords:  []string{"alpha", "beta", "gamma"},
			Intervals: intervals, Posts: posts / 10, KeywordProb: 0.9,
		}}}},
	})
	if err != nil {
		b.Fatal(err)
	}
	return col
}

// BenchmarkPushInterval measures ingesting one interval into a warm
// session: the timed region is Engine.Push — delta-segment encode plus
// the incremental extension of the memoized clusters, graph and burst
// totals — never a full-corpus rebuild. Engine setup and warming run
// off the clock.
func BenchmarkPushInterval(b *testing.B) {
	ctx := context.Background()
	col := benchPushCollection(b, 4, 500)
	base := &corpus.Collection{Intervals: col.Intervals[:3:3]}
	for _, backend := range []string{"mem", "disk"} {
		b.Run(backend, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				eng, err := Open(ctx, FromCollection(base),
					WithGraphOptions(GraphOptions{Gap: 1, Theta: 0.1}),
					WithIndexOptions(IndexOptions{Backend: backend, CompactAfter: -1}))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := eng.Clusters(ctx); err != nil {
					b.Fatal(err)
				}
				if _, err := eng.Graph(ctx); err != nil {
					b.Fatal(err)
				}
				if _, err := eng.TimeSeries(ctx, "alpha"); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := eng.Push(ctx, col.Intervals[3]); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				eng.Close()
				b.StartTimer()
			}
		})
	}
}

// BenchmarkMultiSegmentSearch measures boolean search against a disk
// store grown to 1/4/16 delta segments, before and after compaction:
// the pre-compaction read-time routing overhead versus the folded
// single-segment base.
func BenchmarkMultiSegmentSearch(b *testing.B) {
	ctx := context.Background()
	col := benchPushCollection(b, 17, 200)
	terms := []string{"alpha", "beta"}
	for _, deltas := range []int{1, 4, 16} {
		for _, compacted := range []bool{false, true} {
			segs := deltas + 1
			if compacted {
				segs = 1
			}
			b.Run(fmt.Sprintf("deltas=%d/segments=%d", deltas, segs), func(b *testing.B) {
				baseN := len(col.Intervals) - deltas
				baseCol := &corpus.Collection{Intervals: col.Intervals[:baseN:baseN]}
				st, err := index.OpenStore(ctx, baseCol, index.BackendDisk,
					filepath.Join(b.TempDir(), "base.seg"), index.Config{CompactAfter: -1})
				if err != nil {
					b.Fatal(err)
				}
				defer st.Close()
				for _, iv := range col.Intervals[baseN:] {
					if err := st.Push(ctx, iv); err != nil {
						b.Fatal(err)
					}
				}
				if compacted {
					if err := st.Compact(ctx); err != nil {
						b.Fatal(err)
					}
				}
				if got := st.NumSegments(); got != segs {
					b.Fatalf("NumSegments = %d, want %d", got, segs)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := st.Search(terms, i%len(col.Intervals)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
