package blogclusters

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// pushCorpus builds an m-interval corpus with one persistent event so
// clusters and graph edges exist in every interval.
func pushCorpus(t *testing.T, m int) *Collection {
	t.Helper()
	intervals := make([]int, m)
	for i := range intervals {
		intervals[i] = i
	}
	c, err := GenerateCorpus(CorpusConfig{
		Seed: 33, NumIntervals: m, BackgroundPosts: 120,
		BackgroundVocab: 300, WordsPerPost: 5,
		Events: []CorpusEvent{{Name: "persistent", Phases: []CorpusPhase{{
			Keywords:  []string{"alpha", "beta", "gamma"},
			Intervals: intervals,
			Posts:     50, KeywordProb: 0.95,
		}}}},
	})
	if err != nil {
		t.Fatalf("GenerateCorpus: %v", err)
	}
	return c
}

// prefixCol truncates a collection to its first k intervals.
func prefixCol(c *Collection, k int) *Collection {
	return &Collection{Intervals: c.Intervals[:k:k]}
}

// TestEnginePushIncremental is the acceptance test for live ingest: an
// engine grown by Push answers every query exactly like an engine
// opened over the full corpus, and the stage build counters prove no
// full-corpus artifact was rebuilt — each push runs only the
// incremental stages (interval-clusters, graph-extend).
func TestEnginePushIncremental(t *testing.T) {
	const m, base = 5, 3
	col := pushCorpus(t, m)
	ctx := context.Background()
	for _, backend := range []string{"mem", "disk"} {
		for _, par := range []int{1, 8} {
			t.Run(fmt.Sprintf("%s/par=%d", backend, par), func(t *testing.T) {
				gopts := GraphOptions{Gap: 1, Theta: 0.1, Parallelism: par}
				eng := openTestEngine(t, prefixCol(col, base),
					WithGraphOptions(gopts),
					WithIndexOptions(IndexOptions{Backend: backend, CompactAfter: -1}))
				ref := openTestEngine(t, col,
					WithGraphOptions(gopts),
					WithIndexOptions(IndexOptions{Backend: backend, CompactAfter: -1}))

				// Warm every artifact class at generation 1.
				if _, err := eng.Clusters(ctx); err != nil {
					t.Fatal(err)
				}
				if _, err := eng.Graph(ctx); err != nil {
					t.Fatal(err)
				}
				if _, err := eng.TimeSeries(ctx, "alpha"); err != nil {
					t.Fatal(err)
				}
				if _, err := eng.Bursts(ctx, "alpha"); err != nil {
					t.Fatal(err)
				}

				for k := base; k < m; k++ {
					gen, err := eng.Push(ctx, col.Intervals[k])
					if err != nil {
						t.Fatalf("Push(%d): %v", k, err)
					}
					if want := int64(k - base + 2); gen != want {
						t.Fatalf("Push(%d) generation %d, want %d", k, gen, want)
					}
				}

				// No full-corpus artifact was rebuilt: every whole-corpus
				// stage still shows exactly the one warmup build, and the
				// incremental stages ran once per push.
				st := eng.Stats()
				for _, stage := range []string{"index", "clusters", "graph", "totals"} {
					if b := st.Stages[stage].Builds; b != 1 {
						t.Errorf("stage %q built %d times across %d pushes, want 1 (no full rebuild)", stage, b, m-base)
					}
				}
				for _, stage := range []string{"interval-clusters", "graph-extend"} {
					if b := st.Stages[stage].Builds; b != int64(m-base) {
						t.Errorf("stage %q built %d times, want %d (once per push)", stage, b, m-base)
					}
				}
				if st.Generation != int64(m-base+1) || st.Pushes != int64(m-base) || st.Intervals != m {
					t.Errorf("stats after pushes: gen=%d pushes=%d intervals=%d", st.Generation, st.Pushes, st.Intervals)
				}
				if backend == "disk" && st.IndexSegments != m-base+1 {
					t.Errorf("IndexSegments = %d, want %d (base + one delta per push)", st.IndexSegments, m-base+1)
				}

				// Every query agrees with the one-shot session.
				gotSets, err := eng.Clusters(ctx)
				if err != nil {
					t.Fatal(err)
				}
				wantSets, err := ref.Clusters(ctx)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(gotSets, wantSets) {
					t.Fatal("Clusters after pushes differ from one-shot build")
				}
				gotG, err := eng.Graph(ctx)
				if err != nil {
					t.Fatal(err)
				}
				wantG, err := ref.Graph(ctx)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(gotG, wantG) {
					t.Fatal("Graph after pushes differs from one-shot build")
				}
				for _, kw := range []string{"alpha", "beta"} {
					gotTS, err := eng.TimeSeries(ctx, kw)
					if err != nil {
						t.Fatal(err)
					}
					wantTS, err := ref.TimeSeries(ctx, kw)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(gotTS, wantTS) {
						t.Fatalf("TimeSeries(%q) = %v, want %v", kw, gotTS, wantTS)
					}
					gotB, err := eng.Bursts(ctx, kw)
					if err != nil {
						t.Fatal(err)
					}
					wantB, err := ref.Bursts(ctx, kw)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(gotB, wantB) {
						t.Fatalf("Bursts(%q) = %v, want %v", kw, gotB, wantB)
					}
				}
				gotRes, err := eng.StableClusters(ctx, "bfs", 3, 2)
				if err != nil {
					t.Fatal(err)
				}
				wantRes, err := ref.StableClusters(ctx, "bfs", 3, 2)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(gotRes.Paths, wantRes.Paths) {
					t.Fatalf("StableClusters after pushes = %v, want %v", gotRes.Paths, wantRes.Paths)
				}
			})
		}
	}
}

// TestEnginePushLazyStaysLazy pins the other half of the incremental
// contract: pushing into a session that has built nothing builds
// nothing — the first query after the push sees the grown corpus.
func TestEnginePushLazyStaysLazy(t *testing.T) {
	col := pushCorpus(t, 4)
	ctx := context.Background()
	eng := openTestEngine(t, prefixCol(col, 3))
	if _, err := eng.Push(ctx, col.Intervals[3]); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	for stage, s := range st.Stages {
		if stage != "corpus" && stage != "push" && s.Builds != 0 {
			t.Errorf("push on a cold session built stage %q %d times", stage, s.Builds)
		}
	}
	ts, err := eng.TimeSeries(ctx, "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 4 {
		t.Fatalf("first query after cold push sees %d intervals, want 4", len(ts))
	}
}

// TestEnginePushValidation covers the error surface: out-of-order
// intervals, malformed documents, and that every rejected push leaves
// the session untouched.
func TestEnginePushValidation(t *testing.T) {
	col := pushCorpus(t, 4)
	ctx := context.Background()
	eng := openTestEngine(t, prefixCol(col, 3))

	for name, iv := range map[string]Interval{
		"replay":  {Index: 2},
		"skip":    {Index: 5},
		"too-old": {Index: 0},
	} {
		if _, err := eng.Push(ctx, iv); !errors.Is(err, ErrOutOfOrderInterval) {
			t.Errorf("%s: Push = %v, want ErrOutOfOrderInterval", name, err)
		}
	}
	for name, iv := range map[string]Interval{
		"wrong doc interval": {Index: 3, Docs: []Document{{ID: 1, Interval: 2, Keywords: []string{"x"}}}},
		"negative id":        {Index: 3, Docs: []Document{{ID: -1, Interval: 3, Keywords: []string{"x"}}}},
		"duplicate id":       {Index: 3, Docs: []Document{{ID: 1, Interval: 3, Keywords: []string{"x"}}, {ID: 1, Interval: 3, Keywords: []string{"y"}}}},
		"nul keyword":        {Index: 3, Docs: []Document{{ID: 1, Interval: 3, Keywords: []string{"a\x00b"}}}},
		"newline keyword":    {Index: 3, Docs: []Document{{ID: 1, Interval: 3, Keywords: []string{"a\nb"}}}},
	} {
		if _, err := eng.Push(ctx, iv); !errors.Is(err, ErrMalformedInterval) {
			t.Errorf("%s: Push = %v, want ErrMalformedInterval", name, err)
		}
	}
	if gen := eng.Generation(); gen != 1 {
		t.Fatalf("failed pushes moved the generation to %d", gen)
	}
	if n := len(eng.Collection().Intervals); n != 3 {
		t.Fatalf("failed pushes changed the corpus to %d intervals", n)
	}

	sets, err := Open(ctx, FromClusterSets([][]Cluster{{newTestCluster(0, 0, "a")}}))
	if err != nil {
		t.Fatal(err)
	}
	defer sets.Close()
	if _, err := sets.Push(ctx, Interval{Index: 1}); !errors.Is(err, ErrNoCorpus) {
		t.Errorf("push into cluster-set session = %v, want ErrNoCorpus", err)
	}
}

func newTestCluster(id int64, interval int, kws ...string) Cluster {
	return Cluster{ID: id, Interval: interval, Keywords: kws}
}

// TestEnginePushEvents pins the observability contract: a push emits
// paired push events carrying the old and new generation, and extends
// cached graphs under a visible graph-extend stage.
func TestEnginePushEvents(t *testing.T) {
	col := pushCorpus(t, 4)
	ctx := context.Background()
	var mu sync.Mutex
	var events []StageEvent
	eng := openTestEngine(t, prefixCol(col, 3),
		WithGraphOptions(GraphOptions{Gap: 0, Theta: 0.1}),
		WithProgress(func(ev StageEvent) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		}))
	if _, err := eng.Graph(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Push(ctx, col.Intervals[3]); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	var pushStart, pushDone, extendDone bool
	for _, ev := range events {
		switch {
		case ev.Stage == "push" && !ev.Done:
			pushStart = true
			if ev.Generation != 1 {
				t.Errorf("push start event carries generation %d, want 1", ev.Generation)
			}
		case ev.Stage == "push" && ev.Done:
			pushDone = true
			if ev.Generation != 2 || ev.Err != nil {
				t.Errorf("push done event generation=%d err=%v, want 2/nil", ev.Generation, ev.Err)
			}
		case ev.Stage == "graph-extend" && ev.Done:
			extendDone = true
		}
	}
	if !pushStart || !pushDone || !extendDone {
		t.Fatalf("missing ingest events (push start=%v done=%v extend=%v) in %v", pushStart, pushDone, extendDone, events)
	}
}

// TestEnginePushCompaction drives enough pushes through a warm disk
// index to cross the compaction threshold and verifies the background
// fold ran and the folded store still answers exactly.
func TestEnginePushCompaction(t *testing.T) {
	const m, base = 6, 2
	col := pushCorpus(t, m)
	ctx := context.Background()
	eng := openTestEngine(t, prefixCol(col, base),
		WithIndexOptions(IndexOptions{Backend: "disk", CompactAfter: 1}))
	ref := openTestEngine(t, col)
	if _, err := eng.Index(ctx); err != nil {
		t.Fatal(err)
	}
	for k := base; k < m; k++ {
		if _, err := eng.Push(ctx, col.Intervals[k]); err != nil {
			t.Fatalf("Push(%d): %v", k, err)
		}
	}
	eng.compactWG.Wait()
	st := eng.Stats()
	if st.IndexCompactions == 0 {
		t.Fatalf("no compaction after %d pushes with CompactAfter=1 (segments=%d)", m-base, st.IndexSegments)
	}
	if st.IndexSegments >= m-base+1 {
		t.Fatalf("IndexSegments = %d after compaction, want < %d", st.IndexSegments, m-base+1)
	}
	for _, kw := range []string{"alpha", "beta"} {
		got, err := eng.TimeSeries(ctx, kw)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.TimeSeries(ctx, kw)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("TimeSeries(%q) after compaction = %v, want %v", kw, got, want)
		}
	}
}

// TestEnginePushConcurrentQueries races queries against pushes: every
// query must succeed against some generation's consistent snapshot
// (run under -race this is the snapshot-isolation proof).
func TestEnginePushConcurrentQueries(t *testing.T) {
	const m, base = 6, 2
	col := pushCorpus(t, m)
	ctx := context.Background()
	eng := openTestEngine(t, prefixCol(col, base),
		WithGraphOptions(GraphOptions{Gap: 0, Theta: 0.1}))
	if _, err := eng.Clusters(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Graph(ctx); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	errCh := make(chan error, 64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ts, err := eng.TimeSeries(ctx, "alpha")
				if err != nil {
					errCh <- err
					return
				}
				if len(ts) < base || len(ts) > m {
					errCh <- fmt.Errorf("timeseries over %d intervals, want %d..%d", len(ts), base, m)
					return
				}
				if _, err := eng.StableClusters(ctx, "bfs", 2, 1); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	for k := base; k < m; k++ {
		if _, err := eng.Push(ctx, col.Intervals[k]); err != nil {
			t.Fatalf("Push(%d): %v", k, err)
		}
	}
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if gen := eng.Generation(); gen != int64(m-base+1) {
		t.Fatalf("generation %d after %d pushes, want %d", gen, m-base, m-base+1)
	}
}
